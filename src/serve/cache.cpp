#include "serve/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>
#include <vector>

#include "guard/io.hpp"
#include "guard/memory.hpp"
#include "ooc/spill.hpp"
#include "prof/prof.hpp"
#include "trace/trace.hpp"

namespace mgc::serve {

namespace {

// Stable text form for the floating-point option fields: %.17g
// round-trips every double, so two structs compare equal iff their
// canonical strings do.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* dedup_name(DegreeDedup d) {
  switch (d) {
    case DegreeDedup::kOff: return "off";
    case DegreeDedup::kOn: return "on";
    case DegreeDedup::kAuto: return "auto";
  }
  return "?";
}

std::size_t hierarchy_bytes(const Hierarchy& h) {
  std::size_t bytes = 0;
  for (const Csr& g : h.graphs) bytes += g.memory_bytes();
  for (const CoarseMap& m : h.maps) bytes += m.map.size() * sizeof(vid_t);
  return bytes;
}

// Wraps a hierarchy so its ledger charge is released exactly when the LAST
// reference drops — the cache can demote/evict the entry while an in-flight
// request still holds the pointer without the ledger ever undercounting.
std::shared_ptr<const Hierarchy> charged_hierarchy(Hierarchy&& h,
                                                   std::size_t bytes) {
  return std::shared_ptr<const Hierarchy>(
      new Hierarchy(std::move(h)), [bytes](const Hierarchy* p) {
        delete p;
        if (bytes != 0) guard::MemoryBudget::process().release(bytes);
      });
}

// Best-effort removal of a demoted entry's spill directory (after a
// successful re-hydration or at eviction); failure is ignored — stale
// segments are harmless and the next demotion uses a fresh directory.
void remove_spill_dir(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace

std::string canonical_coarsen_options(const CoarsenOptions& opts) {
  // Field-by-field canonical form. Deliberately EXCLUDED because they
  // cannot change the hierarchy that gets built: checkpoint_dir (a replay
  // aid), memory_budget_bytes (changes whether a build completes, not
  // what a completed build contains), and the ooc ladder knobs
  // degrade / spill_dir / max_shards (sharded construction is bitwise
  // equal to in-memory for any shard count — integer weights — and
  // spilling changes residency, not content). Everything else
  // participates.
  std::string s;
  s += "mapping=";
  s += mapping_name(opts.mapping);
  s += ";construct=";
  s += construction_name(opts.construct.method);
  s += ";dedup=";
  s += dedup_name(opts.construct.degree_dedup);
  s += ";skew=";
  s += fmt_double(opts.construct.skew_threshold);
  s += ";prededup=";
  s += opts.construct.pre_dedup_fine ? "1" : "0";
  s += ";hybrid=";
  s += std::to_string(opts.construct.hybrid_hash_threshold);
  s += ";cutoff=";
  s += std::to_string(opts.cutoff);
  s += ";discard=";
  s += std::to_string(opts.discard_below);
  s += ";maxlevels=";
  s += std::to_string(opts.max_levels);
  s += ";minshrink=";
  s += fmt_double(opts.min_shrink);
  s += ";seed=";
  s += std::to_string(opts.seed);
  s += ";fallbacks=";
  for (std::size_t i = 0; i < opts.fallback_mappings.size(); ++i) {
    if (i != 0) s += ",";
    s += mapping_name(opts.fallback_mappings[i]);
  }
  return s;
}

std::uint32_t graph_crc(const Csr& g) {
  std::uint32_t crc = guard::crc32(g.rowptr.data(),
                                   g.rowptr.size() * sizeof(eid_t));
  crc = guard::crc32(g.colidx.data(), g.colidx.size() * sizeof(vid_t), crc);
  crc = guard::crc32(g.wgts.data(), g.wgts.size() * sizeof(wgt_t), crc);
  crc = guard::crc32(g.vwgts.data(), g.vwgts.size() * sizeof(wgt_t), crc);
  return crc;
}

// One cache slot. State transitions (guarded by the cache mutex):
//
//   kBuilding -> kReady   (inserted)
//   kBuilding -> kFailed  (build failed / did not fit; erased from map)
//   kReady    -> kSpilled (demoted under memory pressure)
//   kSpilled  -> kBuilding -> kReady (re-hydration, single-flight)
//   kSpilled  -> kBuilding -> kSpilled (re-hydrated but no longer fits:
//                revert, fail the request typed, keep the segments)
//
// The ledger charge rides the hierarchy shared_ptr's deleter
// (charged_hierarchy), so a demoted/evicted entry still referenced by an
// in-flight request keeps its bytes charged until that request drops it.
struct HierarchyCache::Entry {
  enum class State { kBuilding, kReady, kSpilled, kFailed };

  State state = State::kBuilding;
  std::shared_ptr<const Hierarchy> hierarchy;
  guard::Status status;
  std::size_t bytes = 0;
  std::string spill_path;  ///< non-empty iff demoted segments exist on disk
  CondVar cv;
  std::list<CacheKey>::iterator lru_it;
  bool in_lru = false;
};

HierarchyCache::HierarchyCache(std::size_t budget_bytes,
                               std::string spill_dir)
    : budget_bytes_(budget_bytes), spill_dir_(std::move(spill_dir)) {
  stats_.budget_bytes = budget_bytes;
}

bool HierarchyCache::evict_lru_locked() {
  if (lru_.empty()) return false;
  const CacheKey key = lru_.back();
  lru_.pop_back();
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->in_lru = false;
    resident_bytes_ -= it->second->bytes;
    map_.erase(it);
  }
  ++stats_.evictions;
  if (prof::enabled()) prof::add("serve.cache.evict", 1);
  return true;
}

bool HierarchyCache::demote_or_evict_lru_locked() {
  if (lru_.empty()) return false;
  const CacheKey key = lru_.back();
  auto it = map_.find(key);
  if (!spill_dir_.empty() && it != map_.end() &&
      it->second->state == Entry::State::kReady &&
      it->second->hierarchy != nullptr) {
    Entry& e = *it->second;
    const std::string dir =
        spill_dir_ + "/entry-" + std::to_string(spill_seq_++);
    const guard::Status ss =
        ooc::spill_hierarchy(dir, *e.hierarchy, key.crc);
    if (ss.ok()) {
      lru_.pop_back();
      e.in_lru = false;
      resident_bytes_ -= e.bytes;
      // The ledger charge is released by the hierarchy deleter — now if
      // this was the last reference, later when the last in-flight
      // request finishes otherwise.
      e.hierarchy.reset();
      e.state = Entry::State::kSpilled;
      e.spill_path = dir;
      ++stats_.demotions;
      if (prof::enabled()) prof::add("serve.cache.demote", 1);
      if (trace::enabled()) {
        trace::instant("serve.cache.demote",
                       "demoted " + std::to_string(e.bytes) +
                           " bytes to " + dir);
      }
      return true;
    }
    // Spill refused (disk full, injected spill-io fault, ...): fall back
    // to plain eviction so memory pressure is still relieved.
    remove_spill_dir(dir);
    if (trace::enabled()) {
      trace::instant("serve.cache.demote_failed", ss.message);
    }
  }
  return evict_lru_locked();
}

bool HierarchyCache::make_room_locked(std::size_t bytes) {
  // Cache-local cap first: demote/evict LRU until the new entry fits.
  if (budget_bytes_ != 0) {
    while (resident_bytes_ + bytes > budget_bytes_ &&
           demote_or_evict_lru_locked()) {
    }
    if (resident_bytes_ + bytes > budget_bytes_) return false;
  }
  // Then the process-wide ledger. Demoted/evicted-but-referenced entries
  // release their charge asynchronously (when the in-flight holder drops
  // them), so making room here may not free ledger room immediately; in
  // that case the charge below keeps failing and the insert is refused —
  // correct, because those bytes genuinely are still live.
  auto& ledger = guard::MemoryBudget::process();
  while (!ledger.try_charge(bytes, ledger.limit())) {
    if (!demote_or_evict_lru_locked()) return false;
  }
  return true;
}

HierarchyCache::Lookup HierarchyCache::get_or_build(const CacheKey& key,
                                                    const Builder& build) {
  std::shared_ptr<Entry> entry;
  bool rehydrate = false;
  std::string rehydrate_dir;
  {
    MutexLock lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      entry = it->second;
      if (entry->state == Entry::State::kBuilding) {
        // Single-flight: coalesce onto the in-progress build (or
        // re-hydration — waiters cannot tell the difference and need not).
        ++stats_.coalesced;
        if (prof::enabled()) prof::add("serve.cache.coalesced", 1);
        while (entry->state == Entry::State::kBuilding) {
          entry->cv.wait(mutex_);
        }
        if (entry->state != Entry::State::kSpilled) {
          Lookup out;
          out.coalesced = true;
          out.status = entry->status;
          out.bytes = entry->bytes;
          if (entry->state == Entry::State::kReady) {
            out.hierarchy = entry->hierarchy;
          }
          return out;
        }
        // Demoted between the publish and this wake-up (cv.wait drops
        // the lock, and memory pressure does not wait for waiters): the
        // spilled form is valid, so fall through and claim the
        // re-hydration rather than return "usable" with no hierarchy.
      }
      if (entry->state == Entry::State::kSpilled) {
        // Demoted entry: this requester re-hydrates it from disk under
        // the same single-flight rule as a build; concurrent requests
        // coalesce on kBuilding above.
        entry->state = Entry::State::kBuilding;
        rehydrate = true;
        rehydrate_dir = entry->spill_path;
        ++stats_.rehydrations;
        if (prof::enabled()) prof::add("serve.cache.rehydrate", 1);
      } else {
        // Ready entry: a hit. (Failed entries are erased at publish time,
        // so a lingering kFailed state is unreachable here.)
        ++stats_.hits;
        if (prof::enabled()) prof::add("serve.cache.hit", 1);
        if (entry->in_lru) {
          lru_.splice(lru_.begin(), lru_, entry->lru_it);
          entry->lru_it = lru_.begin();
        }
        Lookup out;
        out.hierarchy = entry->hierarchy;
        out.status = entry->status;
        out.hit = true;
        out.bytes = entry->bytes;
        return out;
      }
    } else {
      entry = std::make_shared<Entry>();
      map_.emplace(key, entry);
      ++stats_.misses;
      if (prof::enabled()) prof::add("serve.cache.miss", 1);
    }
  }

  // Builder role: load the spilled form or run the coarsening WITHOUT the
  // cache lock. Builders are expected to return typed failures; exceptions
  // are converted so a hostile input can never leave waiters blocked on
  // kBuilding forever.
  const auto run_builder = [&]() -> guard::Result<Hierarchy> {
    try {
      return build();
    } catch (const guard::Error& e) {
      return e.status();
    } catch (const std::exception& e) {
      return guard::Status::internal(std::string("build failed: ") +
                                     e.what());
    }
  };
  guard::Result<Hierarchy> built = guard::Status::internal("builder skipped");
  bool loaded_from_spill = false;
  if (rehydrate) {
    built = ooc::load_hierarchy(rehydrate_dir, key.crc);
    if (built.usable()) {
      loaded_from_spill = true;
    } else {
      // Corrupt / missing / unreadable segments: fall back to a fresh
      // build — a demoted entry degrades to a rebuild, never a crash.
      if (prof::enabled()) prof::add("serve.cache.rehydrate_failed", 1);
      if (trace::enabled()) {
        trace::instant("serve.cache.rehydrate_failed",
                       built.status().message);
      }
      built = run_builder();
    }
  } else {
    built = run_builder();
  }

  std::string cleanup_dir;  // removed after the lock is dropped
  Lookup out;
  {
    MutexLock lock(mutex_);
    if (!built.usable()) {
      entry->state = Entry::State::kFailed;
      entry->status = built.status();
      cleanup_dir = std::move(entry->spill_path);  // stale if rehydrating
      entry->spill_path.clear();
      map_.erase(key);  // a later identical request may retry
      entry->cv.notify_all();
      out.status = entry->status;
    } else {
      const std::size_t bytes = hierarchy_bytes(built.value());
      if (!make_room_locked(bytes)) {
        ++stats_.insert_refused;
        if (prof::enabled()) prof::add("serve.cache.reject", 1);
        if (trace::enabled()) {
          trace::instant("serve.cache.reject",
                         "hierarchy (" + std::to_string(bytes) +
                             " bytes) does not fit the cache budget");
        }
        entry->status = guard::Status::resource_exhausted(
            "hierarchy (" + std::to_string(bytes) +
            " bytes) exceeds the serve cache budget even after eviction");
        if (loaded_from_spill) {
          // The spilled form on disk is still valid: revert instead of
          // dropping, so a later request (after pressure subsides) can
          // still re-hydrate without a rebuild.
          entry->state = Entry::State::kSpilled;
        } else {
          entry->state = Entry::State::kFailed;
          cleanup_dir = std::move(entry->spill_path);
          entry->spill_path.clear();
          map_.erase(key);
        }
        entry->cv.notify_all();
        out.status = entry->status;
      } else {
        entry->hierarchy =
            charged_hierarchy(std::move(built).value(), bytes);
        entry->bytes = bytes;
        entry->status = built.status();  // kOk, or kDegraded on fallback
        entry->state = Entry::State::kReady;
        cleanup_dir = std::move(entry->spill_path);  // now redundant
        entry->spill_path.clear();
        lru_.push_front(key);
        entry->lru_it = lru_.begin();
        entry->in_lru = true;
        resident_bytes_ += bytes;
        entry->cv.notify_all();

        out.hierarchy = entry->hierarchy;
        out.status = entry->status;
        out.bytes = bytes;
      }
    }
  }
  remove_spill_dir(cleanup_dir);
  return out;
}

std::size_t HierarchyCache::evict_all() {
  std::vector<std::string> dirs;
  std::size_t dropped = 0;
  {
    MutexLock lock(mutex_);
    while (evict_lru_locked()) ++dropped;
    // Demoted entries hold no memory but do hold disk: drop them too
    // (this is the operator's "clear everything" control op). In-progress
    // builds are left alone.
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second->state == Entry::State::kSpilled) {
        dirs.push_back(std::move(it->second->spill_path));
        it = map_.erase(it);
        ++dropped;
        ++stats_.evictions;
      } else {
        ++it;
      }
    }
  }
  for (const std::string& d : dirs) remove_spill_dir(d);
  return dropped;
}

HierarchyCache::Stats HierarchyCache::stats() const {
  MutexLock lock(mutex_);
  Stats s = stats_;
  s.entries = map_.size();
  s.resident_bytes = resident_bytes_;
  for (const auto& kv : map_) {
    if (kv.second->state == Entry::State::kSpilled) ++s.spilled_entries;
  }
  return s;
}

}  // namespace mgc::serve
