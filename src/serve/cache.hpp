#pragma once
// mgc::serve — the hierarchy cache at the heart of mgc_serve
// (see docs/serving.md for keying rules and budget semantics).
//
// The paper's premise is that coarsening cost is amortised across
// downstream analyses: a hierarchy built once serves k-way cuts at many k,
// clustering, and Fiedler solves. The cache realises that amortisation for
// a long-running process:
//
//   Key         graph CRC-32 (over the canonical CSR arrays) + the
//               canonicalized CoarsenOptions string. Keying on the PARSED
//               options struct — not the request text — makes key order,
//               whitespace, and spelling of the request irrelevant; two
//               requests hit iff coarsening would do identical work.
//   Single-flight  concurrent misses on one key coalesce: the first
//               requester builds, the rest block on the entry and share
//               the result (and its failure, if the build fails).
//   LRU + budget   resident hierarchies are charged against the
//               process-wide guard::MemoryBudget ledger (PR-6) for their
//               whole cache lifetime. When a new entry does not fit the
//               cache budget or the ledger limit, least-recently-used
//               entries are DEMOTED first — spilled to disk as .mgck
//               segments (ooc::spill_hierarchy) so a later request can
//               re-hydrate instead of rebuilding — or evicted outright
//               when no spill directory is configured (or the spill
//               fails). If the new entry STILL does not fit the insert
//               is refused with kResourceExhausted and the caller maps
//               that to a protocol error reply — degradation, never an
//               OOM kill. Evicted/demoted entries stay alive (and
//               charged) until the last in-flight request drops its
//               reference.
//   Re-hydration  a request hitting a demoted entry loads it back from
//               its spill segments under the same single-flight rule as
//               a build (concurrent requests coalesce); corrupt or
//               missing segments fall back to a fresh build, never a
//               crash. A re-hydrated hierarchy that no longer fits the
//               budget reverts to its spilled form and the request gets
//               the typed refusal.
//
// Thread-safety: every public method is safe to call from concurrent
// request threads. Builders run OUTSIDE the cache lock.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "multilevel/coarsener.hpp"

namespace mgc::serve {

/// Canonical, order-independent text form of CoarsenOptions — the options
/// half of the cache key. Derived from the parsed struct field by field
/// (docs/serving.md documents the exact format), so any two requests that
/// parse to the same options map to the same string.
std::string canonical_coarsen_options(const CoarsenOptions& opts);

/// CRC-32 over the canonical CSR arrays (rowptr || colidx || wgts ||
/// vwgts, raw little-endian bytes) — the graph half of the cache key.
std::uint32_t graph_crc(const Csr& g);

struct CacheKey {
  std::uint32_t crc = 0;
  std::string options;

  bool operator==(const CacheKey& o) const {
    return crc == o.crc && options == o.options;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return std::hash<std::string>()(k.options) ^
           (static_cast<std::size_t>(k.crc) * 0x9E3779B97F4A7C15ULL);
  }
};

class HierarchyCache {
 public:
  /// `budget_bytes` caps the RESIDENT footprint of cached hierarchies
  /// (0 = no cache-local cap; the process-wide ledger limit still holds).
  /// A non-empty `spill_dir` enables the demote-to-disk rung: entries
  /// pushed out by memory pressure are spilled under
  /// `spill_dir/entry-<seq>/` instead of dropped, and re-hydrated on the
  /// next request for the same key.
  explicit HierarchyCache(std::size_t budget_bytes,
                          std::string spill_dir = "");

  HierarchyCache(const HierarchyCache&) = delete;
  HierarchyCache& operator=(const HierarchyCache&) = delete;

  /// Outcome of one lookup. `hierarchy` is null exactly when
  /// !status.usable().
  struct Lookup {
    std::shared_ptr<const Hierarchy> hierarchy;
    guard::Status status;
    bool hit = false;        ///< served from cache, no build ran
    bool coalesced = false;  ///< waited on a concurrent miss's build
    std::size_t bytes = 0;   ///< resident footprint of the entry
  };

  /// The builder runs without the cache lock and returns the hierarchy or
  /// a typed failure. A usable (Ok or Degraded) result is inserted and
  /// charged; eviction runs first if it does not fit, and a result that
  /// STILL does not fit (even into an emptied cache) is dropped and the
  /// lookup fails with kResourceExhausted — the daemon refuses work it
  /// cannot hold rather than being OOM-killed (docs/serving.md).
  using Builder = std::function<guard::Result<Hierarchy>()>;
  Lookup get_or_build(const CacheKey& key, const Builder& build);

  /// Drops every idle entry; returns how many were dropped.
  std::size_t evict_all();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;       ///< builds started (one per coalesced group)
    std::uint64_t coalesced = 0;    ///< requests that waited on another build
    std::uint64_t evictions = 0;
    std::uint64_t insert_refused = 0;  ///< built but did not fit the budget
    std::uint64_t demotions = 0;       ///< entries spilled to disk
    std::uint64_t rehydrations = 0;    ///< spilled entries loaded back
    std::size_t entries = 0;           ///< resident + spilled + building
    std::size_t spilled_entries = 0;   ///< demoted, loadable from disk
    std::size_t resident_bytes = 0;
    std::size_t budget_bytes = 0;
  };
  Stats stats() const;

 private:
  struct Entry;

  /// Evicts the LRU idle entry; false when the cache is empty.
  bool evict_lru_locked() MGC_REQUIRES(mutex_);

  /// Demotes the LRU idle entry to its spilled form (when a spill
  /// directory is configured and the spill succeeds), else evicts it.
  /// False when the LRU is empty. Demotion does file I/O under the cache
  /// mutex — an accepted tradeoff: it only runs on the budget-pressure
  /// path, and publishing the demotion atomically with the room check
  /// keeps the state machine simple (docs/out-of-core.md).
  bool demote_or_evict_lru_locked() MGC_REQUIRES(mutex_);

  /// Charges `bytes` for a new entry, demoting/evicting LRU entries until
  /// it fits both the cache budget and the ledger limit. False when even
  /// an empty cache cannot fit it.
  bool make_room_locked(std::size_t bytes) MGC_REQUIRES(mutex_);

  const std::size_t budget_bytes_;
  const std::string spill_dir_;
  mutable Mutex mutex_;
  // Entry state transitions (Entry::state and friends) happen under mutex_
  // too; Entry lives in the .cpp, so its members carry the contract as a
  // comment rather than an annotation the analysis can attach to mutex_.
  std::unordered_map<CacheKey, std::shared_ptr<Entry>, CacheKeyHash> map_
      MGC_GUARDED_BY(mutex_);
  std::list<CacheKey> lru_ MGC_GUARDED_BY(mutex_);  ///< most-recent first
  std::size_t resident_bytes_ MGC_GUARDED_BY(mutex_) = 0;
  std::uint64_t spill_seq_ MGC_GUARDED_BY(mutex_) = 0;
  Stats stats_ MGC_GUARDED_BY(mutex_);
};

}  // namespace mgc::serve
