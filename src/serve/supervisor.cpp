#include "serve/supervisor.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "core/prng.hpp"
#include "obs/log.hpp"
#include "serve/server.hpp"

namespace mgc::serve {

namespace {

/// Whole-file slurp via raw POSIX I/O: the journal is written with raw
/// O_APPEND writes, and the supervisor reads it the same way. Missing
/// file reads as empty (a worker that crashed before its first request).
std::string read_whole_file(const std::string& path) {
  std::string out;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

/// Truncates (creating if needed) the journal before each worker spawn, so
/// every journal generation describes exactly one worker's lifetime.
void truncate_file(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0600);
  if (fd >= 0) ::close(fd);
}

/// Sleeps `ms` in 50 ms slices, returning early (true) when a drain signal
/// arrives — a backoff pause must not delay shutdown.
bool sleep_ms_unless_drain(std::uint64_t ms) {
  std::uint64_t remaining = ms;
  while (remaining > 0) {
    if (drain_requested()) return true;
    const std::uint64_t slice = remaining < 50 ? remaining : 50;
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(slice / 1000);
    ts.tv_nsec = static_cast<long>((slice % 1000) * 1000000);
    ::nanosleep(&ts, nullptr);
    remaining -= slice;
  }
  return drain_requested();
}

}  // namespace

std::string journal_key(const std::string& graph_spec,
                        const std::string& canonical_opts) {
  // FNV-1a 64 with an out-of-band terminator after each part, so
  // ("ab", "c") and ("a", "bc") hash differently.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const std::string& s) {
    for (const unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    h ^= 0x1FFu;  // not a byte value: unambiguous part terminator
    h *= 0x100000001b3ULL;
  };
  mix(graph_spec);
  mix(canonical_opts);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

std::vector<std::string> journal_open_keys(const std::string& text) {
  std::unordered_map<std::string, int> open;
  std::unordered_set<std::string> ordered;
  std::vector<std::string> order;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    // A record without its newline was torn by the crash mid-write;
    // O_APPEND keeps it the last one, and it is ignored.
    if (end == std::string::npos) break;
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.size() < 3 || line[1] != ' ') continue;
    const char tag = line[0];
    const std::string key = line.substr(2);
    if (key.find(' ') != std::string::npos) continue;
    if (tag == 'B') {
      // Dedup by a separate seen-set, not by the open count: a key that
      // completed (B,E) and then began again must appear once, or the
      // quarantine streak would double-count a single crash.
      ++open[key];
      if (ordered.insert(key).second) order.push_back(key);
    } else if (tag == 'E') {
      --open[key];
    }
  }
  std::vector<std::string> result;
  for (const std::string& k : order) {
    if (open[k] > 0) result.push_back(k);
  }
  return result;
}

std::uint64_t backoff_delay_ms(int attempt, std::uint64_t base_ms,
                               std::uint64_t max_ms, std::uint64_t seed) {
  std::uint64_t d = base_ms;
  for (int i = 0; i < attempt && d < max_ms; ++i) d *= 2;
  if (d > max_ms) d = max_ms;
  if (base_ms > 0) {
    const std::uint64_t j =
        splitmix64(seed ^
                   splitmix64(static_cast<std::uint64_t>(attempt) + 1)) %
        base_ms;
    d = (d + j > max_ms) ? max_ms : d + j;
  }
  return d;
}

bool CrashLoopDetector::record(double now_s) {
  times_.push_back(now_s);
  std::size_t keep = 0;
  for (const double t : times_) {
    if (now_s - t <= window_s_) times_[keep++] = t;
  }
  times_.resize(keep);  // mgc-lint: budget-ok -- bounded by crash count, supervisor-side
  return static_cast<int>(times_.size()) >= max_crashes_;
}

std::vector<std::string> QuarantineTracker::record_crash(
    const std::vector<std::string>& open_keys) {
  const std::unordered_set<std::string> open(open_keys.begin(),
                                             open_keys.end());
  // Consecutive requirement: a key that sat this crash out loses its
  // streak — two unrelated crashes must not poison a bystander.
  for (auto it = streak_.begin(); it != streak_.end();) {
    if (open.count(it->first) == 0) {
      it = streak_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<std::string> newly;
  for (const std::string& k : open_keys) {
    if (members_.count(k) != 0) continue;
    const int s = ++streak_[k];
    if (s >= threshold_) {
      streak_.erase(k);
      members_.insert(k);
      quarantined_.push_back(k);
      newly.push_back(k);
    }
  }
  return newly;
}

int Supervisor::run() {
  guard::Result<int> bound =
      bind_unix_listener(opts_.socket_path, opts_.force_socket);
  if (!bound.ok()) {
    obs::log::emit(obs::log::Level::kError, "sup.socket_failed",
                   {obs::log::kv("socket", opts_.socket_path),
                    obs::log::kv("message", bound.status().message)});
    return guard::exit_code(bound.status().code);
  }
  const int listen_fd = bound.value();
  install_drain_handlers();
  obs::log::emit(obs::log::Level::kInfo, "sup.start",
                 {obs::log::kv("socket", opts_.socket_path),
                  obs::log::kv("journal", opts_.journal_path),
                  obs::log::kv("crash_loop_limit", opts_.crash_loop_limit),
                  obs::log::kv("crash_loop_window_s",
                               opts_.crash_loop_window_s)});

  CrashLoopDetector loop_detector(opts_.crash_loop_limit,
                                  opts_.crash_loop_window_s);
  QuarantineTracker quarantine;
  const auto t0 = std::chrono::steady_clock::now();
  const auto now_s = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  int generation = 0;
  int attempt = 0;  // consecutive crashes; the backoff exponent
  int exit_code = 0;

  for (;;) {
    truncate_file(opts_.journal_path);
    const pid_t pid = ::fork();
    if (pid < 0) {
      obs::log::emit(obs::log::Level::kError, "sup.fork_failed",
                     {obs::log::kv("errno", std::strerror(errno))});
      exit_code = guard::exit_code(guard::Code::kInternal);
      break;
    }
    if (pid == 0) {
      // Worker. The supervisor is single-threaded, so the child is a
      // clean process image: no locks held, no phantom threads.
      WorkerConfig cfg;
      cfg.listen_fd = listen_fd;
      cfg.generation = generation;
      cfg.journal_path = opts_.journal_path;
      cfg.quarantined_keys = quarantine.quarantined();
      int code = guard::exit_code(guard::Code::kInternal);
      try {
        code = worker_main_(cfg);
      } catch (...) {
        // worker_main is expected to map its own failures to exit codes;
        // an escaped exception is exactly the kind of death this
        // architecture exists to absorb.
      }
      if (opts_.worker_exit_runs_atexit) {
        std::exit(code);  // atexit runs: sanitizer leak checks cover us
      }
      std::_Exit(code);
    }

    obs::log::emit(obs::log::Level::kInfo, "sup.worker_spawned",
                   {obs::log::kv("pid", static_cast<int>(pid)),
                    obs::log::kv("generation", generation),
                    obs::log::kv(
                        "quarantined",
                        static_cast<int>(quarantine.quarantined().size()))});

    // Wait for the worker, forwarding a drain request once so SIGTERM to
    // the supervisor drains the whole tree.
    bool drain_forwarded = false;
    int wstatus = 0;
    for (;;) {
      if (drain_requested() && !drain_forwarded) {
        ::kill(pid, SIGTERM);
        drain_forwarded = true;
        obs::log::emit(obs::log::Level::kInfo, "sup.drain_forwarded",
                       {obs::log::kv("pid", static_cast<int>(pid))});
      }
      const pid_t w = ::waitpid(pid, &wstatus, WNOHANG);
      if (w == pid) break;
      if (w < 0 && errno != EINTR) {
        wstatus = 0;
        break;
      }
      struct timespec ts;
      ts.tv_sec = 0;
      ts.tv_nsec = 50 * 1000 * 1000;
      ::nanosleep(&ts, nullptr);
    }

    const bool signaled = WIFSIGNALED(wstatus);
    const int worker_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 0;
    if (!signaled && worker_code == 0) {
      // Clean drain/shutdown: the daemon's normal end of life.
      exit_code = 0;
      break;
    }
    if (drain_forwarded) {
      // The worker failed while we were already draining: propagate its
      // code, never respawn into a shutdown.
      exit_code =
          signaled ? guard::exit_code(guard::Code::kInternal) : worker_code;
      obs::log::emit(obs::log::Level::kError, "sup.worker_exit",
                     {obs::log::kv("pid", static_cast<int>(pid)),
                      obs::log::kv("generation", generation),
                      obs::log::kv("during_drain", true),
                      obs::log::kv("signal",
                                   signaled ? WTERMSIG(wstatus) : 0),
                      obs::log::kv("exit_code", worker_code)});
      break;
    }

    // Crash. Typed event, journal consult, quarantine update, crash-loop
    // check, then a backed-off respawn.
    const std::vector<std::string> open =
        journal_open_keys(read_whole_file(opts_.journal_path));
    obs::log::emit(obs::log::Level::kError, "sup.worker_exit",
                   {obs::log::kv("pid", static_cast<int>(pid)),
                    obs::log::kv("generation", generation),
                    obs::log::kv("signal", signaled ? WTERMSIG(wstatus) : 0),
                    obs::log::kv("exit_code", worker_code),
                    obs::log::kv("inflight",
                                 static_cast<int>(open.size()))});
    for (const std::string& key : quarantine.record_crash(open)) {
      obs::log::emit(obs::log::Level::kError, "sup.quarantine",
                     {obs::log::kv("key", key),
                      obs::log::kv("generation", generation)});
    }
    if (loop_detector.record(now_s())) {
      obs::log::emit(
          obs::log::Level::kError, "sup.crash_loop",
          {obs::log::kv("crashes", opts_.crash_loop_limit),
           obs::log::kv("window_s", opts_.crash_loop_window_s),
           obs::log::kv("exit_code", kCrashLoopExitCode)});
      exit_code = kCrashLoopExitCode;
      break;
    }
    const std::uint64_t delay =
        backoff_delay_ms(attempt, opts_.backoff_base_ms,
                         opts_.backoff_max_ms, opts_.backoff_seed);
    ++attempt;
    ++generation;
    obs::log::emit(obs::log::Level::kWarn, "sup.respawn",
                   {obs::log::kv("generation", generation),
                    obs::log::kv("backoff_ms", delay)});
    if (sleep_ms_unless_drain(delay)) {
      // Drain arrived during the pause; there is no worker to forward it
      // to, so the tree is already quiescent.
      exit_code = 0;
      break;
    }
  }

  ::close(listen_fd);
  ::unlink(opts_.socket_path.c_str());
  if (!opts_.journal_path.empty()) {
    ::unlink(opts_.journal_path.c_str());
  }
  obs::log::emit(obs::log::Level::kInfo, "sup.stopped",
                 {obs::log::kv("socket", opts_.socket_path),
                  obs::log::kv("generations", generation + 1),
                  obs::log::kv("exit_code", exit_code)});
  return exit_code;
}

}  // namespace mgc::serve
