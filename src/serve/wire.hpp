#pragma once
// mgc::serve — wire-format primitives for the mgc_serve protocol
// (see docs/serving.md for the grammar).
//
// The protocol is line-delimited JSON over a local stream socket: one
// request object per line in, one response object per line out. This
// header provides the two halves the service needs:
//
//   Json           a small immutable JSON value (null / bool / number /
//                  string / array / object) with a strict recursive-descent
//                  parser. Requests come from untrusted local clients, so
//                  the parser is hostile-input-safe by construction: depth
//                  is capped, numbers are kept as raw tokens and range-
//                  checked only when a typed accessor is called, and every
//                  syntax error returns a typed kInvalidInput Status — no
//                  input may throw anything else or crash.
//   json_escape    the string-escaping half of response serialisation.
//                  Responses are assembled by appending to a std::string
//                  (the objects are tiny and flat); only strings need help.
//
// Numbers: JSON has one number type but the protocol carries both uint64
// seeds and floating-point resolutions, so Json stores the raw token and
// re-parses per accessor (as_i64 / as_u64 / as_double). Accessors on a
// wrong-typed or out-of-range value return a Status, never truncate.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "guard/status.hpp"

namespace mgc::serve {

/// Maximum nesting depth parse() accepts. Requests are flat objects; the
/// cap only exists so a hostile "[[[[..." cannot exhaust the stack.
inline constexpr int kMaxJsonDepth = 32;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Strict parse of one JSON document (the whole input must be consumed,
  /// modulo surrounding whitespace). All failures are kInvalidInput with a
  /// byte offset in the message.
  [[nodiscard]] static guard::Result<Json> parse(std::string_view text);

  Json() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Object member by key, or nullptr when absent / not an object.
  /// Duplicate keys are a parse error (a hostile client should not be able
  /// to smuggle one value past a validator that saw the other).
  const Json* get(std::string_view key) const;

  /// Object keys in insertion order (empty unless is_object()).
  const std::vector<std::string>& keys() const { return keys_; }

  /// Array elements (empty unless is_array()).
  const std::vector<Json>& elements() const { return elems_; }

  // Typed accessors: Status on type mismatch / range overflow.
  [[nodiscard]] guard::Result<bool> as_bool() const;
  [[nodiscard]] guard::Result<std::string> as_string() const;
  guard::Result<long long> as_i64() const;
  guard::Result<std::uint64_t> as_u64() const;
  [[nodiscard]] guard::Result<double> as_double() const;

  /// The raw number token ("42", "-1.5e3"); empty unless is_number().
  const std::string& number_token() const { return scalar_; }

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string scalar_;  ///< string payload or raw number token
  std::vector<std::string> keys_;
  std::vector<Json> elems_;  ///< array elements, or object values (by key index)
};

/// Escapes `s` for embedding inside a JSON string literal (adds no quotes).
/// Control bytes become \u00XX; invalid UTF-8 passes through byte-wise
/// (the consumer is a local test/tool, not a browser).
std::string json_escape(std::string_view s);

}  // namespace mgc::serve
