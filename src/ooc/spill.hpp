#pragma once
// mgc::ooc — out-of-core spilling of hierarchy levels
// (docs/out-of-core.md has the degradation ladder and file layout).
//
// Rung 1 of the degradation ladder: when guard::MemoryBudget refuses a
// hierarchy-level charge, finished levels move to disk as .mgck segments
// (the PR-6 checkpoint format, byte-for-byte — multilevel/checkpoint.hpp)
// and only the active level stays resident. Segment files are named
// "spill_level_NNNN.mgck" where NNNN is the hierarchy GRAPH INDEX:
// segment i holds graphs[i] plus the interpolation map INTO it
// (maps[i-1].map; segment 0 holds the input graph under an identity map,
// which is why the shared parser accepts level >= 0 here where checkpoint
// snapshots require >= 1).
//
// Read-back: projection needs only the interpolation maps, which
// map_view() serves mmap-backed — the kernel pages the map in lazily and
// may evict it again, so projecting through a spilled hierarchy never
// re-materializes whole levels. When mmap is unavailable or refuses
// (address space, the injected mmap-fail fault), map_view degrades to a
// heap read of just the map array instead of failing. Whole-level
// re-hydration (load / load_hierarchy) is for consumers that need the
// graphs back, e.g. the serve cache after a demotion.
//
// Trust model: segments are validated exactly like checkpoint snapshots —
// header CRC, payload CRC, structural CSR/mapping invariants — on every
// read-back path, including the mmap one. Standalone readers surface
// kInvalidInput (untrusted file); SpillSet read-back of a segment IT
// wrote this run surfaces kInternal (our own invariant broke). The
// spill-io fault kind fires on segment write and read; mmap-fail fires at
// the mmap attempt.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "graph/csr.hpp"
#include "guard/status.hpp"
#include "multilevel/checkpoint.hpp"

namespace mgc::ooc {

/// "<dir>/spill_level_0007.mgck" — the segment holding graph index 7.
std::string spill_segment_path(const std::string& dir, int index);

/// Borrowed view of one interpolation map (fine -> coarse vertex ids).
/// Valid while the owning SpillSet lives and drop_views() is not called.
struct MapView {
  const vid_t* data = nullptr;
  std::size_t size = 0;
};

/// The spilled portion of one hierarchy: which graph indices are on disk,
/// where, and cached read-back state. Thread-safe; shared by hierarchy
/// copies via Hierarchy::spill.
class SpillSet {
 public:
  /// `input_crc` binds every segment to the run's input graph, exactly as
  /// checkpoint snapshots are bound.
  SpillSet(std::string dir, std::uint32_t input_crc);
  ~SpillSet();

  SpillSet(const SpillSet&) = delete;
  SpillSet& operator=(const SpillSet&) = delete;

  /// Durably writes segment `index` (graph + the map into it; pass an
  /// identity map for index 0). The spill-io fault fires here. On success
  /// the caller frees the in-memory copies and releases their charges.
  [[nodiscard]] guard::Status spill(int index, std::uint64_t seed,
                                    const Csr& graph,
                                    const std::vector<vid_t>& map_into,
                                    double mapping_seconds,
                                    double construct_seconds);

  bool spilled(int index) const;
  int num_spilled() const;
  /// Sum of segment file sizes on disk.
  std::size_t spilled_bytes() const;
  const std::string& dir() const { return dir_; }
  std::uint32_t input_crc() const { return input_crc_; }

  /// mmap-backed view of the interpolation map in segment `index` (maps
  /// graphs[index-1] -> graphs[index]). The whole segment is validated on
  /// first touch; the view is cached until drop_views(). Falls back to a
  /// heap read when mmap refuses (mmap-fail fault / non-POSIX hosts).
  [[nodiscard]] guard::Result<MapView> map_view(int index) const;

  /// Re-hydrates segment `index` fully (graph + map). CheckpointLevel
  /// ::level carries the graph index here (>= 0), not a 1-based
  /// checkpoint level.
  [[nodiscard]] guard::Result<CheckpointLevel> load(int index) const;

  /// Releases all cached mmap regions / heap read-backs. Existing
  /// MapViews are invalidated.
  void drop_views();

 private:
  struct Segment;

  std::string dir_;
  std::uint32_t input_crc_ = 0;
  mutable Mutex mutex_;
  std::map<int, std::shared_ptr<Segment>> segments_ MGC_GUARDED_BY(mutex_);
};

/// Validation summary of one spill segment (mgc checkpoint-info).
struct SpillSegmentInfo {
  std::string path;
  int index = -1;            ///< hierarchy graph index (header level field)
  bool valid = false;
  std::string error;         ///< empty when valid
  vid_t n = 0;               ///< vertices of the stored graph
  eid_t entries = 0;         ///< directed adjacency entries
  std::size_t map_n = 0;     ///< interpolation-map size (fine vertices)
  std::size_t file_bytes = 0;
};

/// Reads + fully validates one spill segment as UNTRUSTED input
/// (kInvalidInput on any corruption — the bad_ckpt fixture contract).
[[nodiscard]] guard::Result<CheckpointLevel> read_spill_segment(
    const std::string& path);

/// Scans `dir` for spill_level_*.mgck segments and validates each as
/// untrusted input. Unlike checkpoint prefixes, GAPS ARE NORMAL: a graph
/// index with no segment was resident when the run ended. Sorted by index.
std::vector<SpillSegmentInfo> inspect_spill_dir(const std::string& dir);

/// Writes EVERY level of `h` (resident ones; already-spilled levels keep
/// their segments) into `dir` — the serve cache's demote-to-spilled form.
/// `graph_crc` is the cache key's graph fingerprint, stored as the
/// binding input_crc of every segment.
[[nodiscard]] guard::Status spill_hierarchy(const std::string& dir,
                                            const Hierarchy& h,
                                            std::uint32_t graph_crc);

/// Re-hydrates a hierarchy demoted by spill_hierarchy: reads segments
/// 0..L-1 (no gaps allowed here), validates each against `expect_crc`,
/// and rebuilds a fully resident Hierarchy. kInvalidInput on corruption
/// or a missing segment.
[[nodiscard]] guard::Result<Hierarchy> load_hierarchy(
    const std::string& dir, std::uint32_t expect_crc);

}  // namespace mgc::ooc
