#include "ooc/shard.hpp"

#include <algorithm>
#include <stdexcept>

#include "guard/cancel.hpp"
#include "guard/memory.hpp"
#include "guard/status.hpp"
#include "prof/prof.hpp"

namespace mgc::ooc {

namespace {

/// One owned coarse edge candidate: cu < cv, weight from one fine edge (or
/// a per-shard merged sum of them).
struct Triple {
  vid_t cu;
  vid_t cv;
  wgt_t w;
};

bool triple_less(const Triple& a, const Triple& b) {
  return a.cu != b.cu ? a.cu < b.cu : a.cv < b.cv;
}

/// In-place merge of equal (cu, cv) runs in a SORTED triple vector,
/// summing weights. Returns the merged size.
std::size_t merge_sorted(std::vector<Triple>& t) {
  std::size_t out = 0;
  for (std::size_t i = 0; i < t.size();) {
    Triple acc = t[i];
    std::size_t j = i + 1;
    while (j < t.size() && t[j].cu == acc.cu && t[j].cv == acc.cv) {
      acc.w += t[j].w;
      ++j;
    }
    t[out++] = acc;
    i = j;
  }
  t.resize(out);  // mgc-lint: budget-ok -- shrinking resize, no alloc
  return out;
}

}  // namespace

ShardPlan plan_shards(const Csr& fine, int max_shards) {
  const vid_t n = fine.num_vertices();
  const eid_t entries = fine.num_entries();
  if (max_shards < 1) max_shards = 1;
  if (static_cast<eid_t>(max_shards) > std::max<eid_t>(1, entries)) {
    max_shards = static_cast<int>(std::max<eid_t>(1, entries));
  }
  ShardPlan plan;
  plan.row_begin.push_back(0);
  for (int k = 1; k < max_shards; ++k) {
    // First row whose prefix reaches the k-th entry quantile.
    const eid_t target =
        static_cast<eid_t>((entries * static_cast<long double>(k)) /
                           max_shards);
    const auto it = std::lower_bound(fine.rowptr.begin(),
                                     fine.rowptr.end(), target);
    vid_t cut = static_cast<vid_t>(it - fine.rowptr.begin());
    if (cut > n) cut = n;
    if (cut > plan.row_begin.back()) plan.row_begin.push_back(cut);
  }
  if (plan.row_begin.back() != n) plan.row_begin.push_back(n);
  if (n == 0 && plan.row_begin.size() == 1) plan.row_begin.push_back(0);
  return plan;
}

Csr construct_coarse_graph_sharded(const Csr& fine, const CoarseMap& cm,
                                   const ShardPlan& plan,
                                   ShardStats* stats) {
  if (plan.shards() < 1) {
    throw guard::Error(
        guard::Status::invalid_input("shard plan has no shards"));
  }
  const vid_t nc = cm.nc;
  const std::vector<vid_t>& map = cm.map;

  // Stitch buffer: per-shard locally-merged partials accumulate here. Its
  // charge grows with each shard and is released when this scope unwinds.
  guard::ScopedCharge stitch_charge;
  std::vector<Triple> stitched;

  ShardStats st;
  st.shards = plan.shards();
  for (int k = 0; k < plan.shards(); ++k) {
    if (const guard::Ctx* ctx = guard::current_ctx()) {
      ctx->throw_if_stopped();
    }
    const vid_t lo = plan.row_begin[static_cast<std::size_t>(k)];
    const vid_t hi = plan.row_begin[static_cast<std::size_t>(k) + 1];

    // Exact owned-edge count first, so the scratch charge is tight.
    std::size_t owned = 0;
    for (vid_t u = lo; u < hi; ++u) {
      for (vid_t v : fine.neighbors(u)) {
        if (v > u) ++owned;
      }
    }
    st.max_shard_triples = std::max(st.max_shard_triples,
                                    static_cast<eid_t>(owned));

    // Per-shard sub-budget: this charge is the rung's whole point — it is
    // ~1/k of the intermediate footprint the in-memory path needs at once.
    guard::ScopedCharge shard_charge;
    shard_charge.add(owned * sizeof(Triple), "ooc shard scratch");
    std::vector<Triple> t;
    t.reserve(owned);
    for (vid_t u = lo; u < hi; ++u) {
      const auto nbrs = fine.neighbors(u);
      const auto ws = fine.edge_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t v = nbrs[i];
        if (v <= u) continue;  // owned by min(u, v) == u only
        const vid_t cu = map[static_cast<std::size_t>(u)];
        const vid_t cv = map[static_cast<std::size_t>(v)];
        if (cu == cv) continue;  // internal edge
        t.push_back(cu < cv ? Triple{cu, cv, ws[i]}
                            : Triple{cv, cu, ws[i]});
      }
    }
    std::sort(t.begin(), t.end(), triple_less);
    merge_sorted(t);

    stitch_charge.add(t.size() * sizeof(Triple), "ooc stitch buffer");
    stitched.insert(stitched.end(), t.begin(), t.end());
  }

  // Serial-reference stitch: global sort + merge makes the result
  // independent of shard boundaries.
  std::sort(stitched.begin(), stitched.end(), triple_less);
  merge_sorted(stitched);
  st.stitched_triples = static_cast<eid_t>(stitched.size());

  Csr coarse;
  coarse.vwgts.assign(static_cast<std::size_t>(nc), 0);
  for (vid_t u = 0; u < fine.num_vertices(); ++u) {
    coarse.vwgts[static_cast<std::size_t>(map[static_cast<std::size_t>(u)])] +=
        fine.vwgts[static_cast<std::size_t>(u)];
  }
  coarse.rowptr.assign(static_cast<std::size_t>(nc) + 1, 0);
  for (const Triple& e : stitched) {
    ++coarse.rowptr[static_cast<std::size_t>(e.cu) + 1];
    ++coarse.rowptr[static_cast<std::size_t>(e.cv) + 1];
  }
  for (std::size_t i = 1; i < coarse.rowptr.size(); ++i) {
    coarse.rowptr[i] += coarse.rowptr[i - 1];
  }
  coarse.colidx.resize(static_cast<std::size_t>(coarse.rowptr.back()));
  coarse.wgts.resize(coarse.colidx.size());
  std::vector<eid_t> cursor(coarse.rowptr.begin(), coarse.rowptr.end() - 1);
  // Iterating the globally sorted list fills every row in ascending
  // neighbor order: row r receives its cu < r neighbors (ascending) before
  // its cv > r neighbors (ascending).
  for (const Triple& e : stitched) {
    const auto a = static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.cu)]++);
    coarse.colidx[a] = e.cv;
    coarse.wgts[a] = e.w;
    const auto b = static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.cv)]++);
    coarse.colidx[b] = e.cu;
    coarse.wgts[b] = e.w;
  }

  if (prof::enabled()) {
    prof::add("ooc.sharded_constructions", 1);
    prof::add("ooc.shards", static_cast<std::uint64_t>(st.shards));
  }
  if (stats != nullptr) *stats = st;
  return coarse;
}

}  // namespace mgc::ooc
