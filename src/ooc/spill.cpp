#include "ooc/spill.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "guard/fault.hpp"
#include "guard/io.hpp"
#include "multilevel/coarsener.hpp"
#include "prof/prof.hpp"
#include "trace/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MGC_OOC_POSIX_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MGC_OOC_POSIX_MMAP 0
#endif

namespace mgc::ooc {

namespace {

// .mgck format constants, shared with multilevel/checkpoint.cpp (the
// format spec lives in docs/robustness.md; field offsets are frozen).
constexpr std::size_t kHeaderSize = 80;
constexpr std::uint32_t kFlagLittleEndian = 1;
constexpr std::uint64_t kCountCap = std::uint64_t{1} << 56;

std::uint32_t get_u32(const char* in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(in[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const char* in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(in[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

guard::Status seg_invalid(const std::string& path, const std::string& why) {
  return guard::Status::invalid_input("spill segment " + path + ": " + why);
}

/// Header-level layout of one segment, resolved WITHOUT materializing the
/// payload arrays — this is what lets the mmap path validate a segment
/// while only ever paging it, never copying it.
struct SegLayout {
  int level = 0;
  std::uint64_t seed = 0;
  std::uint64_t n = 0;
  std::uint64_t entries = 0;
  std::uint64_t map_n = 0;
  std::size_t map_offset = 0;  ///< byte offset of the interpolation map
  std::uint32_t input_crc = 0;
  std::uint32_t payload_crc = 0;
};

/// Validates the fixed header of `data[0..size)` and computes the layout.
/// Payload CRC and map-target validation are the CALLER's job (they differ
/// between the mmap and streaming paths).
guard::Status check_segment_header(const std::string& path, const char* data,
                                   std::size_t size, SegLayout& out) {
  if (size < kHeaderSize) {
    return seg_invalid(path, "truncated header (" + std::to_string(size) +
                                 " bytes)");
  }
  if (get_u32(data, 0) != kCheckpointMagic) {
    return seg_invalid(path, "bad magic");
  }
  if (get_u32(data, 4) != kCheckpointVersion) {
    return seg_invalid(path, "unsupported version " +
                                 std::to_string(get_u32(data, 4)));
  }
  if (guard::crc32(data, 76) != get_u32(data, 76)) {
    return seg_invalid(path, "header checksum mismatch");
  }
  const std::uint32_t flags = get_u32(data, 8);
  if ((flags & kFlagLittleEndian) == 0) {
    return seg_invalid(path, "payload endianness not supported");
  }
  out.level = static_cast<int>(get_u32(data, 12));
  out.seed = get_u64(data, 16);
  out.input_crc = get_u32(data, 24);
  out.n = get_u64(data, 32);
  out.entries = get_u64(data, 40);
  out.map_n = get_u64(data, 48);
  out.payload_crc = get_u32(data, 72);
  if (out.level < 0) return seg_invalid(path, "negative level");
  if (out.n < 1 || out.n > kCountCap || out.entries > kCountCap ||
      out.map_n > kCountCap) {
    return seg_invalid(path, "implausible header counts");
  }
  if (out.n > static_cast<std::uint64_t>(
                  std::numeric_limits<vid_t>::max()) ||
      out.map_n > static_cast<std::uint64_t>(
                      std::numeric_limits<vid_t>::max())) {
    return seg_invalid(path, "vertex count overflows vid_t");
  }
  if (out.map_n < out.n) {
    return seg_invalid(path, "map is smaller than the stored graph");
  }
  const std::uint64_t payload = (out.n + 1) * sizeof(eid_t) +
                                out.entries * sizeof(vid_t) +
                                out.entries * sizeof(wgt_t) +
                                out.n * sizeof(wgt_t) +
                                out.map_n * sizeof(vid_t);
  if (size != kHeaderSize + payload) {
    return seg_invalid(path, size < kHeaderSize + payload
                                 ? "truncated payload"
                                 : "trailing bytes after payload");
  }
  out.map_offset = kHeaderSize +
                   static_cast<std::size_t>((out.n + 1) * sizeof(eid_t) +
                                            out.entries * sizeof(vid_t) +
                                            out.entries * sizeof(wgt_t) +
                                            out.n * sizeof(wgt_t));
  return guard::Status::ok_status();
}

/// Range check over a map array: every target must name a vertex of the
/// stored graph, or projection would index out of bounds.
guard::Status check_map_targets(const std::string& path, const vid_t* map,
                                std::size_t map_n, std::uint64_t n) {
  for (std::size_t i = 0; i < map_n; ++i) {
    if (map[i] < 0 || static_cast<std::uint64_t>(map[i]) >= n) {
      return seg_invalid(path, "mapping target out of range");
    }
  }
  return guard::Status::ok_status();
}

int parse_segment_index(const std::string& filename) {
  int index = -1;
  if (std::sscanf(filename.c_str(), "spill_level_%d.mgck", &index) != 1) {
    return -1;
  }
  // Require the exact canonical spelling so stray files are not claimed.
  char canon[32];
  std::snprintf(canon, sizeof(canon), "spill_level_%04d.mgck", index);
  return filename == canon ? index : -1;
}

}  // namespace

std::string spill_segment_path(const std::string& dir, int index) {
  char name[32];
  std::snprintf(name, sizeof(name), "spill_level_%04d.mgck", index);
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += name;
  return path;
}

// One spilled segment and its cached read-back state. The mmap region (or
// its heap fallback) lives until drop_views()/destruction.
struct SpillSet::Segment {
  std::string path;
  std::size_t file_bytes = 0;
  std::uint64_t seed = 0;

  // Read-back cache (filled by map_view on first touch).
  void* mmap_base = nullptr;
  std::size_t mmap_len = 0;
  std::vector<vid_t> heap_map;  ///< mmap-refused fallback
  const vid_t* map = nullptr;
  std::size_t map_n = 0;

  ~Segment() {
#if MGC_OOC_POSIX_MMAP
    if (mmap_base != nullptr) ::munmap(mmap_base, mmap_len);
#endif
  }
};

SpillSet::SpillSet(std::string dir, std::uint32_t input_crc)
    : dir_(std::move(dir)), input_crc_(input_crc) {}

SpillSet::~SpillSet() = default;

guard::Status SpillSet::spill(int index, std::uint64_t seed,
                              const Csr& graph,
                              const std::vector<vid_t>& map_into,
                              double mapping_seconds,
                              double construct_seconds) {
  if (index < 0) {
    return guard::Status::invalid_input("spill index must be >= 0");
  }
  if (guard::fault::should_fire(guard::fault::Kind::kSpillIo)) {
    return guard::Status::internal(
        "spill segment write failed (injected fault kind=spill-io)");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return guard::Status::invalid_input("spill dir " + dir_ + ": " +
                                        ec.message());
  }
  CheckpointLevel lvl;
  lvl.level = index;
  lvl.seed = seed;
  lvl.mapping_seconds = mapping_seconds;
  lvl.construct_seconds = construct_seconds;
  lvl.graph = graph;  // serialization copy; freed before the caller frees
  lvl.map = map_into;
  const std::string bytes = serialize_checkpoint_level(lvl, input_crc_);
  const std::string path = spill_segment_path(dir_, index);
  const guard::Status ws = guard::atomic_write_file(path, bytes);
  if (!ws.ok()) return ws;

  auto seg = std::make_shared<Segment>();
  seg->path = path;
  seg->file_bytes = bytes.size();
  seg->seed = seed;
  {
    MutexLock lock(mutex_);
    segments_[index] = std::move(seg);
  }
  if (prof::enabled()) {
    prof::add("ooc.spilled_segments", 1);
    prof::add("ooc.spilled_bytes",
              static_cast<std::uint64_t>(bytes.size()));
  }
  return guard::Status::ok_status();
}

bool SpillSet::spilled(int index) const {
  MutexLock lock(mutex_);
  return segments_.count(index) != 0;
}

int SpillSet::num_spilled() const {
  MutexLock lock(mutex_);
  return static_cast<int>(segments_.size());
}

std::size_t SpillSet::spilled_bytes() const {
  MutexLock lock(mutex_);
  std::size_t bytes = 0;
  for (const auto& [index, seg] : segments_) bytes += seg->file_bytes;
  return bytes;
}

guard::Result<MapView> SpillSet::map_view(int index) const {
  std::shared_ptr<Segment> seg;
  {
    MutexLock lock(mutex_);
    auto it = segments_.find(index);
    if (it == segments_.end()) {
      return guard::Status::internal(
          "spill segment " + std::to_string(index) + " was never spilled");
    }
    seg = it->second;
    if (seg->map != nullptr) return MapView{seg->map, seg->map_n};
  }

  // First touch: validate the whole segment once, then keep a live view
  // of just the map region. Serialized per SpillSet; concurrent first
  // touches of one segment are rare (the driver projects serially).
  MutexLock lock(mutex_);
  if (seg->map != nullptr) return MapView{seg->map, seg->map_n};
  if (guard::fault::should_fire(guard::fault::Kind::kSpillIo)) {
    return guard::Status::internal(
        "spill segment read failed (injected fault kind=spill-io)");
  }

  const bool mmap_refused =
      guard::fault::should_fire(guard::fault::Kind::kMmapFail);
#if MGC_OOC_POSIX_MMAP
  if (!mmap_refused) {
    const int fd = ::open(seg->path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size >= 0) {
        const std::size_t len = static_cast<std::size_t>(st.st_size);
        void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (base != MAP_FAILED) {
          const char* data = static_cast<const char*>(base);
          SegLayout lay;
          guard::Status s = check_segment_header(seg->path, data, len, lay);
          if (s.ok() && lay.input_crc != input_crc_) {
            s = seg_invalid(seg->path, "input fingerprint mismatch");
          }
          if (s.ok() && lay.level != index) {
            s = seg_invalid(seg->path, "file name / header level mismatch");
          }
          if (s.ok() &&
              guard::crc32(data + kHeaderSize, len - kHeaderSize) !=
                  lay.payload_crc) {
            s = seg_invalid(seg->path, "payload checksum mismatch");
          }
          const vid_t* map =
              reinterpret_cast<const vid_t*>(data + lay.map_offset);
          if (s.ok()) {
            s = check_map_targets(seg->path, map,
                                  static_cast<std::size_t>(lay.map_n),
                                  lay.n);
          }
          if (!s.ok()) {
            ::munmap(base, len);
            // We wrote this segment ourselves this run: corruption on
            // read-back is an internal invariant failure, not bad input.
            return guard::Status::internal(s.message);
          }
          seg->mmap_base = base;
          seg->mmap_len = len;
          seg->map = map;
          seg->map_n = static_cast<std::size_t>(lay.map_n);
          if (prof::enabled()) prof::add("ooc.mmap_views", 1);
          return MapView{seg->map, seg->map_n};
        }
      } else {
        ::close(fd);
      }
    }
    // Real mmap/open refusal: fall through to the heap path below.
  }
#endif
  if (mmap_refused) {
    if (prof::enabled()) prof::add("ooc.mmap_refused", 1);
    if (trace::enabled()) {
      trace::instant("ooc.mmap_refused", seg->path);
    }
  }

  // Degraded read-back: stream-validate the segment, then read only the
  // map array onto the heap. O(map_n) resident instead of a view.
  std::ifstream in(seg->path, std::ios::binary);
  if (!in) {
    return guard::Status::internal("spill segment " + seg->path +
                                   ": cannot open for read-back");
  }
  char header[kHeaderSize];
  in.read(header, kHeaderSize);
  if (in.gcount() != static_cast<std::streamsize>(kHeaderSize)) {
    return guard::Status::internal("spill segment " + seg->path +
                                   ": truncated header on read-back");
  }
  std::error_code ec;
  const std::size_t fsize = static_cast<std::size_t>(
      std::filesystem::file_size(seg->path, ec));
  if (ec) {
    return guard::Status::internal("spill segment " + seg->path + ": " +
                                   ec.message());
  }
  SegLayout lay;
  guard::Status s = check_segment_header(seg->path, header, fsize, lay);
  if (s.ok() && lay.input_crc != input_crc_) {
    s = seg_invalid(seg->path, "input fingerprint mismatch");
  }
  if (s.ok() && lay.level != index) {
    s = seg_invalid(seg->path, "file name / header level mismatch");
  }
  if (!s.ok()) return guard::Status::internal(s.message);

  // Payload CRC in bounded chunks, then seek back for the map bytes.
  std::uint32_t crc = 0;
  std::vector<char> chunk(std::size_t{1} << 20);
  std::size_t remaining = fsize - kHeaderSize;
  while (remaining > 0) {
    const std::size_t want = std::min(remaining, chunk.size());
    in.read(chunk.data(), static_cast<std::streamsize>(want));
    if (in.gcount() != static_cast<std::streamsize>(want)) {
      return guard::Status::internal("spill segment " + seg->path +
                                     ": short read during validation");
    }
    crc = guard::crc32(chunk.data(), want, crc);
    remaining -= want;
  }
  if (crc != lay.payload_crc) {
    return guard::Status::internal("spill segment " + seg->path +
                                   ": payload checksum mismatch");
  }
  std::vector<vid_t> heap_map(static_cast<std::size_t>(lay.map_n));
  in.clear();
  in.seekg(static_cast<std::streamoff>(lay.map_offset));
  in.read(reinterpret_cast<char*>(heap_map.data()),
          static_cast<std::streamsize>(heap_map.size() * sizeof(vid_t)));
  if (in.gcount() !=
      static_cast<std::streamsize>(heap_map.size() * sizeof(vid_t))) {
    return guard::Status::internal("spill segment " + seg->path +
                                   ": short read of the map array");
  }
  s = check_map_targets(seg->path, heap_map.data(), heap_map.size(), lay.n);
  if (!s.ok()) return guard::Status::internal(s.message);
  seg->heap_map = std::move(heap_map);
  seg->map = seg->heap_map.data();
  seg->map_n = seg->heap_map.size();
  if (prof::enabled()) prof::add("ooc.heap_views", 1);
  return MapView{seg->map, seg->map_n};
}

guard::Result<CheckpointLevel> SpillSet::load(int index) const {
  std::string path;
  {
    MutexLock lock(mutex_);
    auto it = segments_.find(index);
    if (it == segments_.end()) {
      return guard::Status::internal(
          "spill segment " + std::to_string(index) + " was never spilled");
    }
    path = it->second->path;
  }
  if (guard::fault::should_fire(guard::fault::Kind::kSpillIo)) {
    return guard::Status::internal(
        "spill segment read failed (injected fault kind=spill-io)");
  }
  guard::Result<CheckpointLevel> r = read_spill_segment(path);
  if (!r.ok()) {
    // Our own segment failing validation mid-run is an internal failure.
    return guard::Status::internal(r.status().message);
  }
  if (r.value().level != index) {
    return guard::Status::internal("spill segment " + path +
                                   ": file name / header level mismatch");
  }
  // input-CRC binding (read_spill_segment cannot know our fingerprint).
  return r;
}

void SpillSet::drop_views() {
  MutexLock lock(mutex_);
  for (auto& [index, seg] : segments_) {
#if MGC_OOC_POSIX_MMAP
    if (seg->mmap_base != nullptr) {
      ::munmap(seg->mmap_base, seg->mmap_len);
      seg->mmap_base = nullptr;
      seg->mmap_len = 0;
    }
#endif
    seg->heap_map.clear();
    seg->heap_map.shrink_to_fit();
    seg->map = nullptr;
    seg->map_n = 0;
  }
}

guard::Result<CheckpointLevel> read_spill_segment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return seg_invalid(path, "cannot open");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return seg_invalid(path, "read failed");
  // min_level 0: segment 0 legitimately holds the input graph. The parser
  // prefixes errors with "checkpoint <path>" — same format, fine.
  return parse_checkpoint_bytes(path, bytes.data(), bytes.size(), nullptr,
                                0, nullptr);
}

std::vector<SpillSegmentInfo> inspect_spill_dir(const std::string& dir) {
  std::vector<SpillSegmentInfo> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    const int index = parse_segment_index(name);
    if (index < 0) continue;
    SpillSegmentInfo info;
    info.path = entry.path().string();
    info.index = index;
    std::ifstream in(info.path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    info.file_bytes = bytes.size();
    CheckpointFileInfo cfi;
    guard::Result<CheckpointLevel> r = parse_checkpoint_bytes(
        info.path, bytes.data(), bytes.size(), nullptr, 0, &cfi);
    info.n = cfi.n;
    info.entries = cfi.entries;
    info.valid = r.ok();
    if (!r.ok()) {
      info.error = r.status().message;
    } else if (r.value().level != index) {
      info.valid = false;
      info.error = "file name / header level mismatch";
    } else {
      info.map_n = r.value().map.size();
    }
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const SpillSegmentInfo& a, const SpillSegmentInfo& b) {
              return a.index < b.index;
            });
  return out;
}

guard::Status spill_hierarchy(const std::string& dir, const Hierarchy& h,
                              std::uint32_t graph_crc) {
  SpillSet set(dir, graph_crc);
  for (int i = 0; i < h.num_levels(); ++i) {
    guard::Status s;
    if (h.level_resident(i)) {
      if (i == 0) {
        std::vector<vid_t> identity(
            static_cast<std::size_t>(h.graphs[0].num_vertices()));
        for (std::size_t u = 0; u < identity.size(); ++u) {
          identity[u] = static_cast<vid_t>(u);
        }
        s = set.spill(0, 0, h.graphs[0], identity,
                      h.levels[0].mapping_seconds,
                      h.levels[0].construct_seconds);
      } else {
        s = set.spill(i, 0, h.graphs[static_cast<std::size_t>(i)],
                      h.maps[static_cast<std::size_t>(i) - 1].map,
                      h.levels[static_cast<std::size_t>(i)].mapping_seconds,
                      h.levels[static_cast<std::size_t>(i)]
                          .construct_seconds);
      }
    } else {
      // Already on disk from a coarsener spill: re-write into `dir` so the
      // demoted form is self-contained (the source SpillSet may be
      // scratch that a finished run deletes).
      guard::Result<CheckpointLevel> r = h.spill->load(i);
      if (!r.ok()) return r.status();
      CheckpointLevel lvl = std::move(r).value();
      s = set.spill(i, lvl.seed, lvl.graph, lvl.map, lvl.mapping_seconds,
                    lvl.construct_seconds);
    }
    if (!s.ok()) return s;
  }
  return guard::Status::ok_status();
}

guard::Result<Hierarchy> load_hierarchy(const std::string& dir,
                                        std::uint32_t expect_crc) {
  Hierarchy h;
  for (int i = 0;; ++i) {
    const std::string path = spill_segment_path(dir, i);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec) break;
    std::ifstream in(path, std::ios::binary);
    if (!in) return seg_invalid(path, "cannot open");
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    guard::Result<CheckpointLevel> r = parse_checkpoint_bytes(
        path, bytes.data(), bytes.size(), &expect_crc, 0, nullptr);
    if (!r.ok()) return r.status();
    CheckpointLevel lvl = std::move(r).value();
    if (lvl.level != i) {
      return seg_invalid(path, "file name / header level mismatch");
    }
    if (i == 0) {
      if (lvl.map.size() !=
          static_cast<std::size_t>(lvl.graph.num_vertices())) {
        return seg_invalid(path, "segment 0 must carry an identity map");
      }
    } else {
      if (lvl.map.size() !=
          static_cast<std::size_t>(h.graphs.back().num_vertices())) {
        return seg_invalid(path,
                           "map size does not match the previous level");
      }
      h.maps.push_back(CoarseMap{std::move(lvl.map),
                                 lvl.graph.num_vertices()});
    }
    h.levels.push_back({lvl.graph.num_vertices(), lvl.graph.num_edges(),
                        lvl.mapping_seconds, lvl.construct_seconds});
    h.graphs.push_back(std::move(lvl.graph));
  }
  if (h.graphs.empty()) {
    return guard::Status::invalid_input("spill dir " + dir +
                                        " has no segment 0");
  }
  return h;
}

}  // namespace mgc::ooc
