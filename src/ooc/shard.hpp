#pragma once
// mgc::ooc — sharded coarse-graph construction (degradation-ladder rung 2,
// docs/out-of-core.md).
//
// construct_coarse_graph builds intermediate arrays sized by the whole fine
// edge set; under memory pressure that single allocation is what the
// guard::MemoryBudget refuses. This rung replaces it with k edge-partitioned
// shards processed ONE AT A TIME: each shard owns a contiguous fine-vertex
// row range, coarsens only its owned edges under a per-shard scratch charge
// (~1/k of the intermediate footprint), and appends its locally-merged
// partial to a stitch buffer. A serial-reference stitcher then globally
// sorts and merge-sums the partials into the coarse CSR.
//
// Invariants the stitcher relies on (tested against the in-memory path by
// canonical-CSR equality in tests/test_ooc.cpp):
//   * ownership: fine edge {u, v} is owned by exactly one shard — the one
//     containing min(u, v) — so no edge is counted twice across shards;
//   * wgt_t is an integer type, so merge-summed coarse edge weights are
//     independent of shard count and merge order (bitwise-equal output for
//     ANY k, including k == 1);
//   * the stitch sorts globally before filling rows, so adjacency order is
//     deterministic and each coarse row comes out sorted by neighbor id.

#include <vector>

#include "coarsen/mapping.hpp"
#include "graph/csr.hpp"

namespace mgc::ooc {

/// Edge-balanced contiguous row partition of a fine graph.
struct ShardPlan {
  /// row_begin[k] .. row_begin[k+1] is shard k's row range; size shards+1.
  std::vector<vid_t> row_begin;

  int shards() const { return static_cast<int>(row_begin.size()) - 1; }
};

/// Splits `fine`'s rows into at most `max_shards` contiguous ranges with
/// roughly equal directed-entry counts (degenerate graphs may yield fewer
/// shards). max_shards < 1 is treated as 1.
ShardPlan plan_shards(const Csr& fine, int max_shards);

/// Diagnostics from one sharded construction.
struct ShardStats {
  int shards = 0;
  /// Largest per-shard owned-edge scratch, in triples — the peak the
  /// per-shard sub-budget charge covers.
  eid_t max_shard_triples = 0;
  /// Total triples handed to the stitcher (after per-shard local merges).
  eid_t stitched_triples = 0;
};

/// Builds the weighted coarse graph shard by shard (semantics identical to
/// construct_coarse_graph: vertex weights summed, internal edges dropped,
/// parallel coarse edges merged by weight summation). Charges per-shard
/// scratch and the stitch buffer against the active guard::MemoryBudget
/// (throwing kResourceExhausted through the kAlloc fault point when
/// refused) and polls the installed guard::Ctx between shards. The final
/// coarse CSR itself is NOT charged here — the multilevel driver owns the
/// hierarchy-level charge, exactly as on the in-memory path.
Csr construct_coarse_graph_sharded(const Csr& fine, const CoarseMap& cm,
                                   const ShardPlan& plan,
                                   ShardStats* stats = nullptr);

}  // namespace mgc::ooc
