#pragma once
// Multilevel graph clustering (community detection) — one of the
// multilevel-heuristic applications motivating the paper (§I cites
// clustering [5]-[7]; §V plans "use our new coarse mapping ... in place of
// the coarsening routines in well-known multilevel methods for graph
// clustering").
//
// The pipeline is the classic multilevel template over mgc's coarsening:
// coarsen to a configurable cutoff, seed each coarsest vertex as a
// cluster, then project level by level with modularity-greedy local moves
// (Louvain-style refinement) at each level.

#include <cstdint>
#include <vector>

#include "multilevel/coarsener.hpp"

namespace mgc {

struct ClusterOptions {
  CoarsenOptions coarsen;  ///< cutoff controls the max cluster count
  int refine_sweeps = 4;   ///< local-move sweeps per level
  /// Modularity resolution parameter (1.0 = standard modularity; higher
  /// values favour smaller communities).
  double resolution = 1.0;
};

struct ClusterResult {
  std::vector<int> cluster;  ///< dense cluster ids per vertex
  int num_clusters = 0;
  double modularity = 0.0;
  int levels = 0;
};

/// Weighted Newman modularity of an assignment (with resolution gamma).
double modularity(const Csr& g, const std::vector<int>& cluster,
                  double resolution = 1.0);

/// Multilevel modularity clustering over the mgc coarsening hierarchy.
ClusterResult multilevel_cluster(const Exec& exec, const Csr& g,
                                 const ClusterOptions& opts = {});

/// Refinement half of multilevel_cluster over a prebuilt hierarchy — the
/// serving-cache entry point (src/serve/). opts.coarsen.seed must be the
/// seed `h` was built with: the per-level local-move sweep orders derive
/// from it (seed ^ level), so the result is bitwise-identical to the
/// one-shot multilevel_cluster (which is implemented on top of this).
ClusterResult multilevel_cluster_on_hierarchy(const Exec& exec,
                                              const Hierarchy& h,
                                              const ClusterOptions& opts = {});

}  // namespace mgc
