#include "cluster/clustering.hpp"

#include <algorithm>
#include <unordered_map>

#include "coarsen/mapping.hpp"
#include "core/permutation.hpp"

namespace mgc {

namespace {

// Weighted degree (Laplacian diagonal) per vertex.
std::vector<wgt_t> weighted_degrees(const Csr& g) {
  std::vector<wgt_t> d(static_cast<std::size_t>(g.num_vertices()), 0);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const wgt_t w : g.edge_weights(u)) {
      d[static_cast<std::size_t>(u)] += w;
    }
  }
  return d;
}

// One sweep of Louvain-style local moves; returns the number of moves.
// cluster ids are arbitrary ints; deg_sum tracks the weighted degree mass
// of each cluster id.
int local_move_sweep(const Csr& g, const std::vector<wgt_t>& vdeg,
                     double m2, double resolution,
                     const std::vector<vid_t>& order,
                     std::vector<int>& cluster,
                     std::unordered_map<int, double>& deg_sum) {
  int moves = 0;
  std::unordered_map<int, wgt_t> weight_to;
  for (const vid_t u : order) {
    const std::size_t su = static_cast<std::size_t>(u);
    const int cu = cluster[su];
    weight_to.clear();
    auto nbrs = g.neighbors(u);
    auto ws = g.edge_weights(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      weight_to[cluster[static_cast<std::size_t>(nbrs[k])]] += ws[k];
    }
    const double du = static_cast<double>(vdeg[su]);
    // Gain of staying put (relative to being isolated).
    const double base_links = static_cast<double>(weight_to[cu]);
    const double base_deg = deg_sum[cu] - du;
    const double stay =
        base_links - resolution * du * base_deg / m2;
    int best_c = cu;
    double best_gain = stay;
    for (const auto& [c, w] : weight_to) {
      if (c == cu) continue;
      const double gain = static_cast<double>(w) -
                          resolution * du * deg_sum[c] / m2;
      if (gain > best_gain + 1e-12 ||
          (gain > best_gain - 1e-12 && c < best_c)) {
        best_gain = gain;
        best_c = c;
      }
    }
    if (best_c != cu) {
      deg_sum[cu] -= du;
      deg_sum[best_c] += du;
      cluster[su] = best_c;
      ++moves;
    }
  }
  return moves;
}

}  // namespace

double modularity(const Csr& g, const std::vector<int>& cluster,
                  double resolution) {
  const double m_tot = static_cast<double>(g.total_edge_weight());
  if (m_tot == 0) return 0.0;
  std::unordered_map<int, double> internal, deg;
  const std::vector<wgt_t> vdeg = weighted_degrees(g);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const std::size_t su = static_cast<std::size_t>(u);
    deg[cluster[su]] += static_cast<double>(vdeg[su]);
    auto nbrs = g.neighbors(u);
    auto ws = g.edge_weights(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (nbrs[k] > u &&
          cluster[su] == cluster[static_cast<std::size_t>(nbrs[k])]) {
        internal[cluster[su]] += static_cast<double>(ws[k]);
      }
    }
  }
  double q = 0.0;
  for (const auto& [c, d] : deg) {
    q += internal[c] / m_tot -
         resolution * (d / (2.0 * m_tot)) * (d / (2.0 * m_tot));
  }
  return q;
}

ClusterResult multilevel_cluster(const Exec& exec, const Csr& g,
                                 const ClusterOptions& opts) {
  const Hierarchy h = coarsen_multilevel(exec, g, opts.coarsen);
  return multilevel_cluster_on_hierarchy(exec, h, opts);
}

ClusterResult multilevel_cluster_on_hierarchy(const Exec& exec,
                                              const Hierarchy& h,
                                              const ClusterOptions& opts) {
  const Csr& g = h.graphs.front();
  ClusterResult result;
  result.levels = h.num_levels();

  const double m2 = 2.0 * static_cast<double>(g.total_edge_weight());
  if (m2 == 0) {
    result.cluster.assign(static_cast<std::size_t>(g.num_vertices()), 0);
    result.num_clusters = g.num_vertices() > 0 ? 1 : 0;
    return result;
  }

  // Seed: every coarsest vertex is its own cluster.
  std::vector<int> cluster(
      static_cast<std::size_t>(h.coarsest().num_vertices()));
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    cluster[i] = static_cast<int>(i);
  }

  // Refine coarsest-to-finest. Degree mass uses the CURRENT level's
  // weighted degrees; note the total degree mass 2m differs per level
  // (coarsening collapses internal edges), so we recompute it — the
  // modularity objective at a level approximates the fine objective.
  for (int level = h.num_levels() - 1; level >= 0; --level) {
    const Csr& lg = h.graphs[static_cast<std::size_t>(level)];
    const std::vector<wgt_t> vdeg = weighted_degrees(lg);
    std::unordered_map<int, double> deg_sum;
    for (vid_t u = 0; u < lg.num_vertices(); ++u) {
      deg_sum[cluster[static_cast<std::size_t>(u)]] +=
          static_cast<double>(vdeg[static_cast<std::size_t>(u)]);
    }
    const double lm2 = 2.0 * static_cast<double>(lg.total_edge_weight());
    if (lm2 > 0) {
      const std::vector<vid_t> order =
          gen_perm(lg.num_vertices(), opts.coarsen.seed ^
                                          static_cast<std::uint64_t>(level));
      for (int sweep = 0; sweep < opts.refine_sweeps; ++sweep) {
        if (local_move_sweep(lg, vdeg, lm2, opts.resolution, order, cluster,
                             deg_sum) == 0) {
          break;
        }
      }
    }
    if (level > 0) {
      cluster = h.project_one_level(cluster, level);
    }
  }

  // Compact ids and compute the final fine-level modularity.
  std::vector<vid_t> as_vid(cluster.begin(), cluster.end());
  const CoarseMap compact = find_uniq_and_relabel(exec, std::move(as_vid));
  result.cluster.assign(compact.map.begin(), compact.map.end());
  result.num_clusters = compact.nc;
  result.modularity = modularity(g, result.cluster, opts.resolution);
  return result;
}

}  // namespace mgc
