# Empty dependencies file for table5_spectral_bisection.
# This may be replaced when dependencies are built.
