# Empty dependencies file for table2_construction_device.
# This may be replaced when dependencies are built.
