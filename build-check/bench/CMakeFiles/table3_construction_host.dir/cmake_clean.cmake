file(REMOVE_RECURSE
  "CMakeFiles/table3_construction_host.dir/table3_construction_host.cpp.o"
  "CMakeFiles/table3_construction_host.dir/table3_construction_host.cpp.o.d"
  "table3_construction_host"
  "table3_construction_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_construction_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
