file(REMOVE_RECURSE
  "CMakeFiles/micro_construction.dir/micro_construction.cpp.o"
  "CMakeFiles/micro_construction.dir/micro_construction.cpp.o.d"
  "micro_construction"
  "micro_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
