# Empty dependencies file for fig3_hec_scaling.
# This may be replaced when dependencies are built.
