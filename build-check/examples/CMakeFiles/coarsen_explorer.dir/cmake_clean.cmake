file(REMOVE_RECURSE
  "CMakeFiles/coarsen_explorer.dir/coarsen_explorer.cpp.o"
  "CMakeFiles/coarsen_explorer.dir/coarsen_explorer.cpp.o.d"
  "coarsen_explorer"
  "coarsen_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarsen_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
