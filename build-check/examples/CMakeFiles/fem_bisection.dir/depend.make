# Empty dependencies file for fem_bisection.
# This may be replaced when dependencies are built.
