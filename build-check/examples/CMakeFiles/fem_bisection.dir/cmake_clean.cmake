file(REMOVE_RECURSE
  "CMakeFiles/fem_bisection.dir/fem_bisection.cpp.o"
  "CMakeFiles/fem_bisection.dir/fem_bisection.cpp.o.d"
  "fem_bisection"
  "fem_bisection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem_bisection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
