# Sanitizer presets for mgc (see docs/checking.md).
#
# Usage:
#   cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMGC_SANITIZE=thread
#   cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DMGC_SANITIZE=address+undefined
#
# Values: off (default) | thread | address | undefined | address+undefined.
# TSan cannot be combined with ASan/UBSan in one build (compiler rejects
# the flag mix), hence the separate CI jobs.

set(MGC_SANITIZE "off" CACHE STRING
    "Sanitizer preset: off, thread, address, undefined, address+undefined")
set_property(CACHE MGC_SANITIZE PROPERTY STRINGS
             off thread address undefined address+undefined)

if(NOT MGC_SANITIZE STREQUAL "off")
  if(MGC_SANITIZE STREQUAL "thread")
    set(_mgc_san_flags -fsanitize=thread)
  elseif(MGC_SANITIZE STREQUAL "address")
    set(_mgc_san_flags -fsanitize=address)
  elseif(MGC_SANITIZE STREQUAL "undefined")
    set(_mgc_san_flags -fsanitize=undefined -fno-sanitize-recover=undefined)
  elseif(MGC_SANITIZE STREQUAL "address+undefined")
    set(_mgc_san_flags -fsanitize=address,undefined
        -fno-sanitize-recover=undefined)
  else()
    message(FATAL_ERROR "Unknown MGC_SANITIZE value: ${MGC_SANITIZE}")
  endif()

  # Keep frame pointers so sanitizer stack traces stay readable even in
  # optimized builds.
  add_compile_options(${_mgc_san_flags} -fno-omit-frame-pointer -g)
  add_link_options(${_mgc_san_flags})
  message(STATUS "mgc: building with MGC_SANITIZE=${MGC_SANITIZE}")
endif()
