file(REMOVE_RECURSE
  "CMakeFiles/table5_spectral_bisection.dir/table5_spectral_bisection.cpp.o"
  "CMakeFiles/table5_spectral_bisection.dir/table5_spectral_bisection.cpp.o.d"
  "table5_spectral_bisection"
  "table5_spectral_bisection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_spectral_bisection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
