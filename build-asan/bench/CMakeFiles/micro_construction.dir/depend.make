# Empty dependencies file for micro_construction.
# This may be replaced when dependencies are built.
