# Empty compiler generated dependencies file for ablation_fiedler.
# This may be replaced when dependencies are built.
