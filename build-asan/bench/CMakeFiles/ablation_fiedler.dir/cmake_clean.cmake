file(REMOVE_RECURSE
  "CMakeFiles/ablation_fiedler.dir/ablation_fiedler.cpp.o"
  "CMakeFiles/ablation_fiedler.dir/ablation_fiedler.cpp.o.d"
  "ablation_fiedler"
  "ablation_fiedler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fiedler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
