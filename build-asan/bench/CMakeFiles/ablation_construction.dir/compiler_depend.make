# Empty compiler generated dependencies file for ablation_construction.
# This may be replaced when dependencies are built.
