file(REMOVE_RECURSE
  "CMakeFiles/mgc_cli.dir/mgc_cli.cpp.o"
  "CMakeFiles/mgc_cli.dir/mgc_cli.cpp.o.d"
  "mgc"
  "mgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
