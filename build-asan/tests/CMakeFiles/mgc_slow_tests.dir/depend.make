# Empty dependencies file for mgc_slow_tests.
# This may be replaced when dependencies are built.
