
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_check.cpp" "tests/CMakeFiles/mgc_tests.dir/test_check.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_check.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/mgc_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_coarsen_ace.cpp" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_ace.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_ace.cpp.o.d"
  "/root/repo/tests/test_coarsen_bsuitor.cpp" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_bsuitor.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_bsuitor.cpp.o.d"
  "/root/repo/tests/test_coarsen_gosh.cpp" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_gosh.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_gosh.cpp.o.d"
  "/root/repo/tests/test_coarsen_hec.cpp" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_hec.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_hec.cpp.o.d"
  "/root/repo/tests/test_coarsen_hem.cpp" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_hem.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_hem.cpp.o.d"
  "/root/repo/tests/test_coarsen_mapping.cpp" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_mapping.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_mapping.cpp.o.d"
  "/root/repo/tests/test_coarsen_mis2.cpp" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_mis2.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_mis2.cpp.o.d"
  "/root/repo/tests/test_coarsen_suitor.cpp" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_suitor.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_suitor.cpp.o.d"
  "/root/repo/tests/test_coarsen_two_hop.cpp" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_two_hop.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_coarsen_two_hop.cpp.o.d"
  "/root/repo/tests/test_construct.cpp" "tests/CMakeFiles/mgc_tests.dir/test_construct.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_construct.cpp.o.d"
  "/root/repo/tests/test_core_atomics.cpp" "tests/CMakeFiles/mgc_tests.dir/test_core_atomics.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_core_atomics.cpp.o.d"
  "/root/repo/tests/test_core_exec.cpp" "tests/CMakeFiles/mgc_tests.dir/test_core_exec.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_core_exec.cpp.o.d"
  "/root/repo/tests/test_core_hashmap.cpp" "tests/CMakeFiles/mgc_tests.dir/test_core_hashmap.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_core_hashmap.cpp.o.d"
  "/root/repo/tests/test_core_permutation.cpp" "tests/CMakeFiles/mgc_tests.dir/test_core_permutation.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_core_permutation.cpp.o.d"
  "/root/repo/tests/test_core_prng.cpp" "tests/CMakeFiles/mgc_tests.dir/test_core_prng.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_core_prng.cpp.o.d"
  "/root/repo/tests/test_core_sorting.cpp" "tests/CMakeFiles/mgc_tests.dir/test_core_sorting.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_core_sorting.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/mgc_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_fiedler_multilevel.cpp" "tests/CMakeFiles/mgc_tests.dir/test_fiedler_multilevel.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_fiedler_multilevel.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/mgc_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_graph_csr.cpp" "tests/CMakeFiles/mgc_tests.dir/test_graph_csr.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_graph_csr.cpp.o.d"
  "/root/repo/tests/test_graph_generators.cpp" "tests/CMakeFiles/mgc_tests.dir/test_graph_generators.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_graph_generators.cpp.o.d"
  "/root/repo/tests/test_graph_io.cpp" "tests/CMakeFiles/mgc_tests.dir/test_graph_io.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_graph_io.cpp.o.d"
  "/root/repo/tests/test_graph_spec.cpp" "tests/CMakeFiles/mgc_tests.dir/test_graph_spec.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_graph_spec.cpp.o.d"
  "/root/repo/tests/test_multilevel.cpp" "tests/CMakeFiles/mgc_tests.dir/test_multilevel.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_multilevel.cpp.o.d"
  "/root/repo/tests/test_parallel_refine.cpp" "tests/CMakeFiles/mgc_tests.dir/test_parallel_refine.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_parallel_refine.cpp.o.d"
  "/root/repo/tests/test_partition_end2end.cpp" "tests/CMakeFiles/mgc_tests.dir/test_partition_end2end.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_partition_end2end.cpp.o.d"
  "/root/repo/tests/test_partition_fm.cpp" "tests/CMakeFiles/mgc_tests.dir/test_partition_fm.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_partition_fm.cpp.o.d"
  "/root/repo/tests/test_partition_kway.cpp" "tests/CMakeFiles/mgc_tests.dir/test_partition_kway.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_partition_kway.cpp.o.d"
  "/root/repo/tests/test_partition_spectral.cpp" "tests/CMakeFiles/mgc_tests.dir/test_partition_spectral.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_partition_spectral.cpp.o.d"
  "/root/repo/tests/test_prof.cpp" "tests/CMakeFiles/mgc_tests.dir/test_prof.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_prof.cpp.o.d"
  "/root/repo/tests/test_quality_parity.cpp" "tests/CMakeFiles/mgc_tests.dir/test_quality_parity.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_quality_parity.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/mgc_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_spla.cpp" "tests/CMakeFiles/mgc_tests.dir/test_spla.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/test_spla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/mgc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
