# Empty dependencies file for coarsen_explorer.
# This may be replaced when dependencies are built.
