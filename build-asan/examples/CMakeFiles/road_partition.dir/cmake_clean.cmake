file(REMOVE_RECURSE
  "CMakeFiles/road_partition.dir/road_partition.cpp.o"
  "CMakeFiles/road_partition.dir/road_partition.cpp.o.d"
  "road_partition"
  "road_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
