file(REMOVE_RECURSE
  "CMakeFiles/spectral_drawing.dir/spectral_drawing.cpp.o"
  "CMakeFiles/spectral_drawing.dir/spectral_drawing.cpp.o.d"
  "spectral_drawing"
  "spectral_drawing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_drawing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
