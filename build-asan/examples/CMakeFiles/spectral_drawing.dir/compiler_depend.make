# Empty compiler generated dependencies file for spectral_drawing.
# This may be replaced when dependencies are built.
