// Figure 3 reproduction, three panels:
//   left   — device HEC coarsening performance rate (graph entries per
//            second of coarsening time), per graph;
//   centre — device / host speedup per graph;
//   right  — weak scaling on the three synthetic families (rgg,
//            delaunay-mesh, kron) across four sizes.

#include <cstdio>
#include <vector>

#include "suite.hpp"

namespace {

using namespace mgc;

double coarsen_seconds(const Exec& exec, const Csr& g) {
  CoarsenOptions opts;
  opts.mapping = Mapping::kHec;
  opts.construct.method = Construction::kSort;
  const Hierarchy h = coarsen_multilevel(exec, g, opts);
  return h.total_seconds();
}

}  // namespace

// The body runs under bench_main (bottom of file) so MGC_PROFILE /
// MGC_TRACE reports flush even on an error path.
static int bench_body() {
  using namespace mgc;
  using namespace mgc::bench;
  const Exec dev = Exec::threads();
  const Exec host = Exec::serial();

  std::printf("Fig.3 left+centre analogue: HEC performance rate and "
              "device/host speedup\n\n");
  std::printf("%-14s %12s %14s %10s %8s\n", "Graph", "size(2m+n)",
              "rate(ME/s dev)", "dev(s)", "speedup");
  print_rule(64);
  std::vector<double> speedups;
  for (const SuiteEntry& e : suite()) {
    const Csr g = e.make();
    const double size = static_cast<double>(g.num_entries()) +
                        static_cast<double>(g.num_vertices());
    const double t_dev = coarsen_seconds(dev, g);
    const double t_host = coarsen_seconds(host, g);
    const double rate = t_dev > 0 ? size / t_dev / 1e6 : 0;
    const double speedup = t_dev > 0 ? t_host / t_dev : 0;
    speedups.push_back(speedup);
    std::printf("%-14s %12.0f %14.1f %10.3f %8.2f\n", e.name.c_str(), size,
                rate, t_dev, speedup);
  }
  std::printf("%-14s %12s %14s %10s %8.2f  (geomean)\n", "GeoMean", "", "",
              "", geomean(speedups));
  print_rule(64);

  std::printf("\nFig.3 right analogue: weak scaling (performance rate vs "
              "size)\n\n");
  std::printf("%-10s %10s %10s %14s\n", "family", "n", "2m+n",
              "rate(ME/s dev)");
  print_rule(48);
  struct Scale {
    const char* family;
    std::function<Csr(int)> make;
  };
  const std::vector<Scale> families = {
      {"rgg",
       [](int s) {
         const vid_t n = vid_t{1} << (12 + s);
         const double r = std::sqrt(16.0 / (3.14159265 * n));
         return make_rgg(n, r, 300 + static_cast<std::uint64_t>(s));
       }},
      {"delaunay",
       [](int s) {
         const vid_t side = static_cast<vid_t>(64 << s);
         return make_triangulated_grid(side, side,
                                       400 + static_cast<std::uint64_t>(s));
       }},
      {"kron",
       [](int s) {
         return largest_connected_component(
             make_rmat(11 + s, 12, 500 + static_cast<std::uint64_t>(s)));
       }},
  };
  for (const auto& fam : families) {
    for (int s = 0; s < 4; ++s) {
      const Csr g = fam.make(s);
      const double size = static_cast<double>(g.num_entries()) +
                          static_cast<double>(g.num_vertices());
      const double t = coarsen_seconds(dev, g);
      std::printf("%-10s %10d %10.0f %14.1f\n", fam.family,
                  g.num_vertices(), size, t > 0 ? size / t / 1e6 : 0);
    }
  }
  return 0;
}

int main() { return mgc::bench::bench_main("fig3_hec_scaling", bench_body); }
