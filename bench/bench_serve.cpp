// bench_serve — load generator for the mgc_serve request path.
//
// Two modes:
//   * default: drives serve::Service::handle_line DIRECTLY (no socket) —
//     the Service is transport-agnostic by design, so this measures
//     request dispatch, the admission queue, and the hierarchy cache
//     under concurrency without the noise of socket syscalls;
//   * --socket PATH: connects to a RUNNING mgc_serve daemon over AF_UNIX
//     and drives it across the wire. Built for the chaos-soak CI job: a
//     connection dropped mid-request (the worker was killed) is counted
//     and the client reconnects — if reconnecting fails outright the
//     listening socket is gone, which is a fatal finding (the supervisor
//     contract is that it never disappears).
//
// Workload: T client threads issue a mixed stream of partition / cluster
// / fiedler / coarsen requests over a small set of graphs. Most requests
// target "popular" graphs (cache hits at varying k); a minority target
// cold graphs (misses that exercise build + eviction); a slice carries a
// deliberately tight deadline to exercise typed DeadlineExceeded replies.
// The mix is seeded and deterministic per thread.
//
// Output: a human summary on stdout and — with --profile — an
// mgc-profile JSON report whose meta block carries the numbers the CI
// serve-smoke job asserts on:
//   serve.p50_ms / serve.p99_ms   client-side request latency percentiles
//   serve.server_p50_ms / serve.server_p99_ms
//                                 server-side percentiles from the live
//                                 obs::metrics histograms (per-op
//                                 histograms merged); client-minus-server
//                                 is dispatch + queueing overhead
//   serve.queue_p50_ms / serve.queue_p99_ms  admission-queue wait
//   serve.req_per_s               throughput (the telemetry-overhead
//                                 gate compares this on vs --no-telemetry)
//   serve.hit_rate                cache hits / (hits + misses)
//   serve.requests / serve.errors / serve.deadline_errors
//   serve.dropped / serve.reconnects   --socket mode connection churn
//
// Usage:
//   bench_serve [--threads T] [--requests-per-thread N]
//               [--cache-budget BYTES] [--profile FILE.json]
//               [--no-telemetry] [--socket PATH]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "guard/env.hpp"
#include "obs/metrics.hpp"
#include "prof/prof.hpp"
#include "serve/service.hpp"

namespace {

using namespace mgc;

// splitmix64: deterministic per-thread request mix.
std::uint64_t mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

struct Tally {
  std::vector<double> latencies_ms;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t deadline_errors = 0;
  std::uint64_t overload_errors = 0;
  std::uint64_t dropped = 0;     ///< connection died before the reply
  std::uint64_t reconnects = 0;  ///< successful reconnects after a drop
};

// The popular set is small enough that every graph's hierarchy stays
// resident; the cold set is what churns the cache under a tight budget.
const char* kPopular[] = {"gen:grid2d:100,100", "gen:rgg:6000,0.02",
                          "gen:tri:80,80"};
const char* kCold[] = {"gen:grid2d:90,91", "gen:grid2d:90,92",
                       "gen:grid2d:90,93", "gen:grid2d:90,94"};

std::string make_request(std::uint64_t& rng, int request_index) {
  const std::uint64_t r = mix64(rng);
  const bool popular = (r % 100) < 80;
  const char* graph =
      popular ? kPopular[r % (sizeof(kPopular) / sizeof(*kPopular))]
              : kCold[r % (sizeof(kCold) / sizeof(*kCold))];

  std::string req = "{\"id\":" + std::to_string(request_index) +
                    ",\"graph\":\"" + graph + "\",\"seed\":3";
  switch (mix64(rng) % 10) {
    case 0:
    case 1:
    case 2:
    case 3:  // partition at a varying k: the cache-amortisation case
      req += ",\"op\":\"partition\",\"k\":" +
             std::to_string(2 + (mix64(rng) % 6));
      break;
    case 4:
    case 5:
      req += ",\"op\":\"cluster\"";
      break;
    case 6:
      req += ",\"op\":\"fiedler\"";
      break;
    default:
      req += ",\"op\":\"coarsen\"";
      break;
  }
  // ~10% staggered tight deadlines: some land as DeadlineExceeded, some
  // squeak through — both are correct; the point is typed replies either
  // way, never a wedged daemon.
  if (mix64(rng) % 10 == 0) {
    req += ",\"deadline_ms\":" + std::to_string(1 + (mix64(rng) % 40));
  }
  req += "}";
  return req;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// One thread's wire connection to a running daemon: line out, line in.
struct SocketClient {
  int fd = -1;
  std::string inbuf;

  bool connect_once(const std::string& path) {
    close_fd();
    if (path.size() >= sizeof(sockaddr_un{}.sun_path)) return false;
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      close_fd();
      return false;
    }
    // Generous read timeout: a reply slower than this counts as a drop
    // rather than wedging the bench forever.
    struct timeval tv;
    tv.tv_sec = 60;
    tv.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    inbuf.clear();
    return true;
  }

  /// Retries cover the supervisor's respawn backoff window: a worker
  /// death leaves the listening socket (and its backlog) alive, so a
  /// connect during the gap still succeeds or succeeds shortly after.
  bool connect_retry(const std::string& path, int attempts, int delay_ms) {
    for (int a = 0; a < attempts; ++a) {
      if (connect_once(path)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    return false;
  }

  void close_fd() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }

  bool send_line(const std::string& line) {
    if (fd < 0) return false;
    const std::string out = line + "\n";
    const char* p = out.data();
    std::size_t left = out.size();
    while (left > 0) {
#ifdef MSG_NOSIGNAL
      const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
#else
      const ssize_t n = ::send(fd, p, left, 0);
#endif
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  bool read_line(std::string& line) {
    if (fd < 0) return false;
    for (;;) {
      const std::size_t nl = inbuf.find('\n');
      if (nl != std::string::npos) {
        line = inbuf.substr(0, nl);
        inbuf.erase(0, nl + 1);
        return true;
      }
      char buf[4096];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) return false;  // peer closed (worker died)
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // includes the RCVTIMEO expiry
      }
      inbuf.append(buf, static_cast<std::size_t>(n));
    }
  }
};

void tally_reply(Tally& tally, const std::string& reply, double ms) {
  tally.latencies_ms.push_back(ms);
  if (reply.find("\"ok\":true") != std::string::npos) {
    ++tally.ok;
  } else {
    ++tally.errors;
    if (reply.find("DeadlineExceeded") != std::string::npos) {
      ++tally.deadline_errors;
    }
    if (reply.find("ResourceExhausted") != std::string::npos) {
      ++tally.overload_errors;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  int per_thread = 25;
  std::string profile_path;
  std::string socket_path;
  serve::ServiceOptions opts = serve::ServiceOptions::from_env().value();

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        // mgc-lint: stderr-ok -- CLI usage error, printed before any run
        std::fprintf(stderr, "bench_serve: missing value for %s\n",
                     flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--threads") {
      threads = std::max(1, std::atoi(next().c_str()));
    } else if (flag == "--requests-per-thread") {
      per_thread = std::max(1, std::atoi(next().c_str()));
    } else if (flag == "--cache-budget") {
      opts.cache_budget_bytes = guard::parse_bytes(next()).value();
    } else if (flag == "--profile") {
      profile_path = next();
    } else if (flag == "--no-telemetry") {
      opts.telemetry = false;
    } else if (flag == "--socket") {
      socket_path = next();
    } else {
      // mgc-lint: stderr-ok -- CLI usage error, printed before any run
      std::fprintf(stderr,
                   "usage: bench_serve [--threads T] "
                   "[--requests-per-thread N] [--cache-budget BYTES] "
                   "[--profile FILE.json] [--no-telemetry] "
                   "[--socket PATH]\n");
      return 2;
    }
  }

  if (!profile_path.empty()) prof::enable();

  const bool socket_mode = !socket_path.empty();
  std::unique_ptr<serve::Service> service;
  if (socket_mode) {
    // A worker killed mid-reply must not kill the bench.
    std::signal(SIGPIPE, SIG_IGN);
  } else {
    service = std::make_unique<serve::Service>(opts);
    // Counters/histograms accumulate process-wide; zero them so the
    // snapshot below covers exactly this run.
    if (opts.telemetry) obs::metrics::reset();
  }

  std::vector<Tally> tallies(static_cast<std::size_t>(threads));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(threads));
  std::atomic<bool> socket_lost{false};

  const auto wall_start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      Tally& tally = tallies[static_cast<std::size_t>(t)];
      std::uint64_t rng = 0xBE5C0DE + static_cast<std::uint64_t>(t);
      SocketClient client;
      if (socket_mode &&
          !client.connect_retry(socket_path, 200, 50)) {
        socket_lost.store(true, std::memory_order_relaxed);
        return;
      }
      for (int i = 0; i < per_thread; ++i) {
        const std::string req = make_request(rng, t * per_thread + i);
        const auto t0 = std::chrono::steady_clock::now();
        std::string reply;
        if (socket_mode) {
          if (!client.send_line(req) || !client.read_line(reply)) {
            // The connection died under the request — a worker crash or
            // kill. The request is counted dropped, never replayed (a
            // crashing request must not be re-executed by the bench), and
            // the client reconnects. Reconnect failure means the
            // LISTENING socket is gone: the supervisor contract is
            // broken, and the bench exits nonzero.
            ++tally.dropped;
            client.close_fd();
            if (!client.connect_retry(socket_path, 200, 50)) {
              socket_lost.store(true, std::memory_order_relaxed);
              return;
            }
            ++tally.reconnects;
            continue;
          }
        } else {
          reply = service->handle_line(req);
        }
        const auto t1 = std::chrono::steady_clock::now();
        tally_reply(tally, reply,
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count());
      }
      client.close_fd();
    });
  }
  for (std::thread& c : clients) c.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  Tally total;
  for (const Tally& t : tallies) {
    total.latencies_ms.insert(total.latencies_ms.end(),
                              t.latencies_ms.begin(), t.latencies_ms.end());
    total.ok += t.ok;
    total.errors += t.errors;
    total.deadline_errors += t.deadline_errors;
    total.overload_errors += t.overload_errors;
    total.dropped += t.dropped;
    total.reconnects += t.reconnects;
  }

  const double p50 = percentile(total.latencies_ms, 0.50);
  const double p99 = percentile(total.latencies_ms, 0.99);

  // Server-side view: the per-op latency histograms the daemon itself
  // keeps, merged into one distribution (identical bucket layout, so the
  // merge is element-wise). Client-side latency covers dispatch + queue +
  // execution; the server-side per-op histogram starts at admission, so
  // client >= server and the gap is queueing/dispatch overhead. Histogram
  // quantiles are bucket lower bounds (conservative), so server p50/p99
  // bracket below the client numbers by construction. In --socket mode
  // the histograms live in the daemon (scrape them via its metrics op).
  double server_p50_ms = 0.0, server_p99_ms = 0.0;
  double queue_p50_ms = 0.0, queue_p99_ms = 0.0;
  std::uint64_t server_observations = 0;
  const bool local_telemetry = !socket_mode && opts.telemetry;
  if (local_telemetry) {
    const obs::metrics::Snapshot snap = obs::metrics::snapshot();
    obs::metrics::HistogramSnapshot merged;
    for (const char* name :
         {"serve.op.coarsen.latency_us", "serve.op.partition.latency_us",
          "serve.op.cluster.latency_us", "serve.op.fiedler.latency_us"}) {
      if (const obs::metrics::HistogramSnapshot* h =
              snap.find_histogram(name)) {
        merged.merge(*h);
      }
    }
    server_observations = merged.count;
    server_p50_ms = static_cast<double>(merged.quantile(0.50)) / 1000.0;
    server_p99_ms = static_cast<double>(merged.quantile(0.99)) / 1000.0;
    if (const obs::metrics::HistogramSnapshot* q =
            snap.find_histogram("serve.queue.wait_us")) {
      queue_p50_ms = static_cast<double>(q->quantile(0.50)) / 1000.0;
      queue_p99_ms = static_cast<double>(q->quantile(0.99)) / 1000.0;
    }
  }

  const serve::HierarchyCache::Stats cs =
      socket_mode ? serve::HierarchyCache::Stats{} : service->cache_stats();
  const double hit_rate =
      cs.hits + cs.misses == 0
          ? 0.0
          : static_cast<double>(cs.hits) /
                static_cast<double>(cs.hits + cs.misses);

  std::printf(
      "bench_serve: %d threads x %d requests in %.2fs (%.1f req/s)%s\n",
      threads, per_thread, wall_s,
      static_cast<double>(total.latencies_ms.size()) / wall_s,
      socket_mode ? " [socket mode]" : "");
  std::printf("  latency p50 %.2f ms, p99 %.2f ms (client-side)\n", p50,
              p99);
  if (local_telemetry) {
    std::printf(
        "  latency p50 %.2f ms, p99 %.2f ms (server-side, %llu admitted)\n",
        server_p50_ms, server_p99_ms,
        static_cast<unsigned long long>(server_observations));
    std::printf("  queue wait p50 %.2f ms, p99 %.2f ms\n", queue_p50_ms,
                queue_p99_ms);
  }
  std::printf(
      "  replies: %llu ok, %llu errors (%llu deadline, %llu overload)\n",
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.errors),
      static_cast<unsigned long long>(total.deadline_errors),
      static_cast<unsigned long long>(total.overload_errors));
  if (socket_mode) {
    std::printf("  connections: %llu dropped mid-request, %llu reconnects\n",
                static_cast<unsigned long long>(total.dropped),
                static_cast<unsigned long long>(total.reconnects));
  } else {
    std::printf(
        "  cache: %llu hits / %llu misses (hit rate %.3f), %llu evictions, "
        "%zu resident bytes\n",
        static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.misses), hit_rate,
        static_cast<unsigned long long>(cs.evictions), cs.resident_bytes);
  }

  if (!profile_path.empty()) {
    prof::set_meta("tool", std::string("bench_serve"));
    prof::set_meta("serve.p50_ms", p50);
    prof::set_meta("serve.p99_ms", p99);
    prof::set_meta("serve.server_p50_ms", server_p50_ms);
    prof::set_meta("serve.server_p99_ms", server_p99_ms);
    prof::set_meta("serve.queue_p50_ms", queue_p50_ms);
    prof::set_meta("serve.queue_p99_ms", queue_p99_ms);
    prof::set_meta("serve.req_per_s",
                   static_cast<double>(total.latencies_ms.size()) / wall_s);
    prof::set_meta("serve.telemetry",
                   static_cast<long long>(opts.telemetry ? 1 : 0));
    prof::set_meta("serve.hit_rate", hit_rate);
    prof::set_meta("serve.requests",
                   static_cast<long long>(total.latencies_ms.size()));
    prof::set_meta("serve.errors", static_cast<long long>(total.errors));
    prof::set_meta("serve.deadline_errors",
                   static_cast<long long>(total.deadline_errors));
    prof::set_meta("serve.dropped", static_cast<long long>(total.dropped));
    prof::set_meta("serve.reconnects",
                   static_cast<long long>(total.reconnects));
    const guard::Status st = prof::write_json_file(profile_path);
    if (!st.ok()) {
      // mgc-lint: stderr-ok -- report-write failure, exits immediately
      std::fprintf(stderr, "bench_serve: %s\n", st.to_string().c_str());
      return guard::exit_code(st.code);
    }
    std::printf("  wrote profile to %s\n", profile_path.c_str());
  }
  if (socket_lost.load(std::memory_order_relaxed)) {
    // mgc-lint: stderr-ok -- fatal finding, the process exits right here
    std::fprintf(stderr,
                 "bench_serve: listening socket disappeared (reconnect "
                 "failed); the supervisor contract is broken\n");
    return guard::exit_code(guard::Code::kInternal);
  }
  return 0;
}
