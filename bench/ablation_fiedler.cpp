// Multilevel-Fiedler ablation: the cascadic-multigrid motivation for HEC
// (Urschel et al., the paper's ref [14]). Compares a flat power iteration
// against the multilevel solve (coarse solve + interpolated warm starts)
// across mesh sizes: fine-level iterations, total time, and the resulting
// bisection cut.

#include <cstdio>

#include "suite.hpp"

// The body runs under bench_main (bottom of file) so MGC_PROFILE /
// MGC_TRACE reports flush even on an error path.
static int bench_body() {
  using namespace mgc;
  using namespace mgc::bench;
  const Exec exec = Exec::threads();

  std::printf("Ablation: flat power iteration vs multilevel (cascadic) "
              "Fiedler solve\n\n");
  std::printf("%-12s %8s | %10s %10s | %10s %10s | %8s %8s\n", "graph", "n",
              "flat iters", "ML fine", "flat(s)", "ML(s)", "cutFlat",
              "cutML");
  print_rule(92);

  struct Case {
    const char* name;
    Csr g;
  };
  const Case cases[] = {
      {"grid 20x20", make_grid2d(20, 20)},
      {"grid 40x40", make_grid2d(40, 40)},
      {"grid 60x60", make_grid2d(60, 60)},
      {"tri 40x40", make_triangulated_grid(40, 40, 3)},
      {"grid3d 12^3", make_grid3d(12, 12, 12)},
      {"rgg 4k", largest_connected_component(make_rgg(4000, 0.035, 5))},
  };
  for (const Case& c : cases) {
    // Flat: iterate to tolerance (capped). Multilevel: the paper's
    // practical configuration — full budget on the (tiny) coarsest graph,
    // short warm-started refinement per level.
    SpectralOptions flat_opts;
    flat_opts.max_iterations = 20000;
    SpectralOptions ml_opts;
    ml_opts.max_iterations = 20000;
    ml_opts.max_refine_iterations = 200;

    Timer t_flat;
    SpectralStats flat_stats;
    const auto flat = fiedler_vector(exec, c.g, 42, flat_opts, nullptr,
                                     &flat_stats);
    const double flat_s = t_flat.seconds();

    Timer t_ml;
    const FiedlerResult ml = multilevel_fiedler(exec, c.g, {}, ml_opts);
    const double ml_s = t_ml.seconds();

    const wgt_t cut_flat = edge_cut(c.g, bisect_by_vector(c.g, flat));
    const wgt_t cut_ml = edge_cut(c.g, bisect_by_vector(c.g, ml.vector));

    std::printf("%-12s %8d | %10d %10d | %10.3f %10.3f | %8lld %8lld\n",
                c.name, c.g.num_vertices(), flat_stats.iterations,
                ml.fine_iterations, flat_s, ml_s,
                static_cast<long long>(cut_flat),
                static_cast<long long>(cut_ml));
  }
  std::printf("\n(ML fine = power iterations needed at the finest level "
              "after the interpolated warm start)\n");
  return 0;
}

int main() { return mgc::bench::bench_main("ablation_fiedler", bench_body); }
