// Table I reproduction: the evaluation suite after preprocessing (largest
// connected component), with edge/vertex counts and the degree-skew measure
// used to split the suite into regular and skewed-degree groups.

#include <cstdio>

#include "suite.hpp"

// The body runs under bench_main (bottom of file) so MGC_PROFILE /
// MGC_TRACE reports flush even on an error path.
static int bench_body() {
  using namespace mgc;
  using namespace mgc::bench;

  std::printf("Table I analogue: evaluation suite (scaled synthetic "
              "stand-ins)\n\n");
  std::printf("%-14s %-6s %10s %10s %12s %8s\n", "Graph", "Domain", "m", "n",
              "max/avg deg", "group");
  print_rule(66);
  for (const SuiteEntry& e : suite()) {
    const Csr g = e.make();
    std::printf("%-14s %-6s %10lld %10d %12.1f %8s\n", e.name.c_str(),
                e.domain.c_str(), static_cast<long long>(g.num_edges()),
                g.num_vertices(), g.degree_skew(),
                e.skewed ? "skewed" : "regular");
  }
  return 0;
}

int main() { return mgc::bench::bench_main("table1_suite", bench_body); }
