// Mapping-method ablations for the paper's extension claims:
//   1. GOSH-HEC hybrid vs GOSH (paper: 1.46x faster, 1.18x fewer levels);
//   2. ACE weighted aggregation densification (the reason the paper
//      excluded ACE results) and the max_interp mitigation;
//   3. Suitor matching (named future work) vs HEM: matching weight and
//      downstream edge cut.

#include <cstdio>
#include <vector>

#include "suite.hpp"

// The body runs under bench_main (bottom of file) so MGC_PROFILE /
// MGC_TRACE reports flush even on an error path.
static int bench_body() {
  using namespace mgc;
  using namespace mgc::bench;
  const Exec exec = Exec::threads();

  // ---- 1. GOSH vs GOSH-HEC ----
  std::printf("Ablation 1: GOSH vs GOSH-HEC hybrid (time ratio, levels)\n\n");
  std::printf("%-14s %14s | %6s %9s\n", "Graph", "tGOSH/tHybrid", "lGOSH",
              "lHybrid");
  print_rule(50);
  std::vector<double> t_ratio, l_ratio;
  for (const SuiteEntry& e : suite()) {
    const Csr g = e.make();
    CoarsenOptions og, oh;
    og.mapping = Mapping::kGosh;
    oh.mapping = Mapping::kGoshHec;
    const Hierarchy hg = coarsen_multilevel(exec, g, og);
    const Hierarchy hh = coarsen_multilevel(exec, g, oh);
    const double tr =
        hh.total_seconds() > 0 ? hg.total_seconds() / hh.total_seconds() : 0;
    t_ratio.push_back(tr);
    l_ratio.push_back(static_cast<double>(hg.num_levels()) /
                      hh.num_levels());
    std::printf("%-14s %14.2f | %6d %9d\n", e.name.c_str(), tr,
                hg.num_levels(), hh.num_levels());
  }
  std::printf("%-14s %14.2f | level ratio %.2fx  (geomean; paper: 1.46x "
              "faster, 1.18x fewer levels)\n",
              "GeoMean", geomean(t_ratio), geomean(l_ratio));
  print_rule(50);

  // ---- 2. ACE densification ----
  std::printf("\nAblation 2: ACE weighted aggregation densification\n\n");
  std::printf("%-12s %10s %12s %12s %12s\n", "graph", "fine deg",
              "HEC deg", "ACE deg", "ACE(cap2)");
  print_rule(62);
  for (const char* which : {"tri_grid", "rgg", "chung_lu"}) {
    Csr g;
    if (std::string(which) == "tri_grid") {
      g = make_triangulated_grid(40, 40, 5);
    } else if (std::string(which) == "rgg") {
      g = largest_connected_component(make_rgg(2000, 0.04, 5));
    } else {
      g = largest_connected_component(make_chung_lu(2000, 10, 2.2, 5));
    }
    const double fine_deg =
        static_cast<double>(g.num_entries()) / g.num_vertices();
    const CoarseMap hec_cm = hec_parallel(exec, g, 5);
    const Csr hec_coarse = construct_coarse_graph(exec, g, hec_cm);
    const double hec_deg = static_cast<double>(hec_coarse.num_entries()) /
                           std::max<vid_t>(1, hec_coarse.num_vertices());
    const AceResult ace = ace_coarsen(exec, g, 5);
    const double ace_deg = static_cast<double>(ace.coarse.num_entries()) /
                           std::max<vid_t>(1, ace.coarse.num_vertices());
    AceOptions cap;
    cap.max_interp = 2;
    const AceResult ace2 = ace_coarsen(exec, g, 5, cap);
    const double ace2_deg =
        static_cast<double>(ace2.coarse.num_entries()) /
        std::max<vid_t>(1, ace2.coarse.num_vertices());
    std::printf("%-12s %10.2f %12.2f %12.2f %12.2f\n", which, fine_deg,
                hec_deg, ace_deg, ace2_deg);
  }
  std::printf("\n(ACE coarse graphs densify vs strict aggregation — the "
              "paper's reason to exclude ACE results;\n the max_interp cap "
              "is the sparsity-preserving change flagged as future work)\n");

  // ---- 3. Suitor vs HEM ----
  std::printf("\nAblation 3: Suitor matching vs HEM "
              "(one-level nc and FM-bisection cut)\n\n");
  std::printf("%-14s | %8s %8s | %10s %10s\n", "Graph", "ncHEM", "ncSuitor",
              "cutHEM", "cutSuitor");
  print_rule(60);
  std::vector<double> cut_ratio;
  for (const SuiteEntry& e : suite()) {
    const Csr g = e.make();
    const CoarseMap hem = compute_mapping(Mapping::kHem, exec, g, 5);
    const CoarseMap sui = compute_mapping(Mapping::kSuitor, exec, g, 5);
    CoarsenOptions oh, os;
    oh.mapping = Mapping::kHem;
    os.mapping = Mapping::kSuitor;
    const PartitionResult ph = multilevel_fm_bisect(exec, g, oh);
    const PartitionResult ps = multilevel_fm_bisect(exec, g, os);
    if (ph.cut > 0) {
      cut_ratio.push_back(static_cast<double>(ps.cut) /
                          static_cast<double>(ph.cut));
    }
    std::printf("%-14s | %8d %8d | %10lld %10lld\n", e.name.c_str(), hem.nc,
                sui.nc, static_cast<long long>(ph.cut),
                static_cast<long long>(ps.cut));
  }
  std::printf("%-14s | cut ratio Suitor/HEM %.2f (geomean)\n", "GeoMean",
              geomean(cut_ratio));
  return 0;
}

int main() { return mgc::bench::bench_main("ablation_mappings", bench_body); }
