// Google-benchmark microbenchmarks for one level of coarse-graph
// construction: every method on a regular mesh and on a skewed graph, plus
// the coarse-mapping kernels themselves.

#include <benchmark/benchmark.h>

#include "coarsen/hec.hpp"
#include "coarsen/mapping.hpp"
#include "construct/construct.hpp"
#include "graph/generators.hpp"

namespace {

using namespace mgc;

const Csr& mesh_graph() {
  static const Csr g = make_triangulated_grid(120, 120, 5);
  return g;
}

const Csr& skewed_graph() {
  static const Csr g =
      largest_connected_component(make_chung_lu(12000, 16, 2.0, 7));
  return g;
}

const CoarseMap& mesh_map() {
  static const CoarseMap cm = hec_parallel(Exec::threads(), mesh_graph(), 5);
  return cm;
}

const CoarseMap& skewed_map() {
  static const CoarseMap cm =
      hec_parallel(Exec::threads(), skewed_graph(), 5);
  return cm;
}

void construct_bench(benchmark::State& state, const Csr& g,
                     const CoarseMap& cm, Construction method,
                     DegreeDedup dedup) {
  const Exec exec = Exec::threads();
  ConstructOptions opts;
  opts.method = method;
  opts.degree_dedup = dedup;
  for (auto _ : state) {
    benchmark::DoNotOptimize(construct_coarse_graph(exec, g, cm, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          g.num_entries());
}

void BM_ConstructMesh(benchmark::State& state) {
  construct_bench(state, mesh_graph(), mesh_map(),
                  static_cast<Construction>(state.range(0)),
                  DegreeDedup::kAuto);
}
BENCHMARK(BM_ConstructMesh)
    ->Arg(static_cast<int>(Construction::kSort))
    ->Arg(static_cast<int>(Construction::kHash))
    ->Arg(static_cast<int>(Construction::kHeap))
    ->Arg(static_cast<int>(Construction::kHybrid))
    ->Arg(static_cast<int>(Construction::kSpgemm))
    ->Arg(static_cast<int>(Construction::kGlobalSort));

void BM_ConstructSkewed(benchmark::State& state) {
  construct_bench(state, skewed_graph(), skewed_map(),
                  static_cast<Construction>(state.range(0)),
                  DegreeDedup::kAuto);
}
BENCHMARK(BM_ConstructSkewed)
    ->Arg(static_cast<int>(Construction::kSort))
    ->Arg(static_cast<int>(Construction::kHash))
    ->Arg(static_cast<int>(Construction::kHeap))
    ->Arg(static_cast<int>(Construction::kHybrid))
    ->Arg(static_cast<int>(Construction::kSpgemm))
    ->Arg(static_cast<int>(Construction::kGlobalSort));

void BM_ConstructSkewedDedupOff(benchmark::State& state) {
  construct_bench(state, skewed_graph(), skewed_map(), Construction::kSort,
                  DegreeDedup::kOff);
}
BENCHMARK(BM_ConstructSkewedDedupOff);

void BM_MappingKernel(benchmark::State& state) {
  const Exec exec = Exec::threads();
  const Csr& g = skewed_graph();
  const Mapping m = static_cast<Mapping>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_mapping(m, exec, g, 42));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          g.num_entries());
}
BENCHMARK(BM_MappingKernel)
    ->Arg(static_cast<int>(Mapping::kHec))
    ->Arg(static_cast<int>(Mapping::kHec2))
    ->Arg(static_cast<int>(Mapping::kHec3))
    ->Arg(static_cast<int>(Mapping::kHem))
    ->Arg(static_cast<int>(Mapping::kMtMetis))
    ->Arg(static_cast<int>(Mapping::kGosh))
    ->Arg(static_cast<int>(Mapping::kGoshHec))
    ->Arg(static_cast<int>(Mapping::kMis2));

}  // namespace

BENCHMARK_MAIN();
