// Construction ablations reproducing the claims made in the running text
// of §IV-A:
//   1. the degree-based one-sided deduplication optimization (paper: 25.7x
//      construction-time blowup on kron21 when disabled);
//   2. HEC vs HEC2 vs HEC3 (paper: HEC 1.13x faster than HEC3, 1.21x than
//      HEC2; HEC2/HEC3 need more levels);
//   3. lock-free pass statistics (paper: 99.4% of vertices resolved within
//      two passes at level 1, 96.7% at level 2);
//   4. duplication factor per graph (the sort-vs-hash decision variable).

#include <cstdio>
#include <vector>

#include "suite.hpp"

namespace {

using namespace mgc;

}  // namespace

// The body runs under bench_main (bottom of file) so MGC_PROFILE /
// MGC_TRACE reports flush even on an error path.
static int bench_body() {
  using namespace mgc;
  using namespace mgc::bench;
  const Exec exec = Exec::threads();

  // ---- 1. one-sided degree-dedup on/off ----
  std::printf("Ablation 1: degree-based dedup optimization "
              "(construction time OFF/ON, sort-based)\n\n");
  std::printf("%-14s %8s %12s %12s %10s\n", "Graph", "skew", "t_off(s)",
              "t_on(s)", "off/on");
  print_rule(60);
  std::vector<double> ratios_skewed, ratios_regular;
  for (const SuiteEntry& e : suite()) {
    const Csr g = e.make();
    CoarsenOptions on, off;
    on.construct.degree_dedup = DegreeDedup::kOn;
    off.construct.degree_dedup = DegreeDedup::kOff;
    const double t_on =
        coarsen_multilevel(exec, g, on).construct_seconds();
    const double t_off =
        coarsen_multilevel(exec, g, off).construct_seconds();
    const double ratio = t_on > 0 ? t_off / t_on : 0;
    (e.skewed ? ratios_skewed : ratios_regular).push_back(ratio);
    std::printf("%-14s %8.1f %12.4f %12.4f %10.2f\n", e.name.c_str(),
                g.degree_skew(), t_off, t_on, ratio);
  }
  std::printf("%-14s %8s %12s %12s %10.2f  (regular geomean)\n", "GeoMean",
              "", "", "", geomean(ratios_regular));
  std::printf("%-14s %8s %12s %12s %10.2f  (skewed geomean)\n", "GeoMean",
              "", "", "", geomean(ratios_skewed));
  print_rule(60);

  // ---- 2. HEC vs HEC2 vs HEC3 ----
  std::printf("\nAblation 2: HEC parallelization variants "
              "(time ratio vs HEC, levels)\n\n");
  std::printf("%-14s %10s %10s | %5s %5s %5s\n", "Graph", "HEC2/HEC",
              "HEC3/HEC", "lHEC", "lHEC2", "lHEC3");
  print_rule(62);
  std::vector<double> r2, r3, lr2, lr3;
  for (const SuiteEntry& e : suite()) {
    const Csr g = e.make();
    CoarsenOptions o1, o2, o3;
    o1.mapping = Mapping::kHec;
    o2.mapping = Mapping::kHec2;
    o3.mapping = Mapping::kHec3;
    const Hierarchy h1 = coarsen_multilevel(exec, g, o1);
    const Hierarchy h2 = coarsen_multilevel(exec, g, o2);
    const Hierarchy h3 = coarsen_multilevel(exec, g, o3);
    const double t1 = h1.total_seconds();
    const double rr2 = t1 > 0 ? h2.total_seconds() / t1 : 0;
    const double rr3 = t1 > 0 ? h3.total_seconds() / t1 : 0;
    r2.push_back(rr2);
    r3.push_back(rr3);
    lr2.push_back(static_cast<double>(h2.num_levels()) / h1.num_levels());
    lr3.push_back(static_cast<double>(h3.num_levels()) / h1.num_levels());
    std::printf("%-14s %10.2f %10.2f | %5d %5d %5d\n", e.name.c_str(), rr2,
                rr3, h1.num_levels(), h2.num_levels(), h3.num_levels());
  }
  std::printf("%-14s %10.2f %10.2f | level ratios: HEC2 %.2fx, HEC3 %.2fx"
              "  (geomean)\n",
              "GeoMean", geomean(r2), geomean(r3), geomean(lr2),
              geomean(lr3));
  print_rule(62);

  // ---- 3. pass statistics ----
  std::printf("\nAblation 3: lock-free HEC pass statistics "
              "(%% of vertices resolved within two passes)\n\n");
  std::printf("%-14s %8s %8s %8s\n", "Graph", "level1", "level2", "passes");
  print_rule(44);
  double sum_l1 = 0, sum_l2 = 0;
  int count_l1 = 0, count_l2 = 0;
  for (const SuiteEntry& e : suite()) {
    Csr g = e.make();
    double pct[2] = {100, 100};
    int passes_shown = 0;
    for (int level = 0; level < 2 && g.num_vertices() > 50; ++level) {
      MappingStats stats;
      const CoarseMap cm = hec_parallel(exec, g, 42, &stats);
      vid_t two = 0, total = 0;
      for (std::size_t p = 0; p < stats.resolved_per_pass.size(); ++p) {
        if (p < 2) two += stats.resolved_per_pass[p];
        total += stats.resolved_per_pass[p];
      }
      pct[level] = total > 0 ? 100.0 * two / total : 100.0;
      if (level == 0) passes_shown = stats.passes;
      g = construct_coarse_graph(exec, g, cm);
    }
    sum_l1 += pct[0];
    ++count_l1;
    sum_l2 += pct[1];
    ++count_l2;
    std::printf("%-14s %7.1f%% %7.1f%% %8d\n", e.name.c_str(), pct[0],
                pct[1], passes_shown);
  }
  std::printf("%-14s %7.1f%% %7.1f%%   (means; paper reports 99.4 / 96.7)\n",
              "Mean", sum_l1 / count_l1, sum_l2 / count_l2);
  print_rule(44);

  // ---- 4. duplication factor ----
  std::printf("\nAblation 4: duplication factor m'/coarse entries at the "
              "first level (drives sort-vs-hash)\n\n");
  std::printf("%-14s %10s %12s\n", "Graph", "dup", "group");
  print_rule(38);
  for (const SuiteEntry& e : suite()) {
    const Csr g = e.make();
    const CoarseMap cm = hec_parallel(exec, g, 42);
    ConstructStats stats;
    construct_coarse_graph(exec, g, cm, {}, &stats);
    std::printf("%-14s %10.2f %12s\n", e.name.c_str(),
                stats.duplication_factor, e.skewed ? "skewed" : "regular");
  }
  return 0;
}

int main() { return mgc::bench::bench_main("ablation_construction", bench_body); }
