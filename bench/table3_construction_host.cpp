// Table III reproduction: HEC-based multilevel coarsening on the host
// backend (Backend::Serial), comparing graph-construction strategies —
// the multicore-CPU side of the paper's device/host pair.

#include <cstdio>
#include <vector>

#include "suite.hpp"

namespace {

using namespace mgc;

double construct_time(const Exec& exec, const Csr& g, Construction method) {
  CoarsenOptions opts;
  opts.mapping = Mapping::kHec;
  opts.construct.method = method;
  const Hierarchy h = coarsen_multilevel(exec, g, opts);
  return h.construct_seconds();
}

}  // namespace

// The body runs under bench_main (bottom of file) so MGC_PROFILE /
// MGC_TRACE reports flush even on an error path.
static int bench_body() {
  using namespace mgc;
  using namespace mgc::bench;
  const Exec exec = Exec::serial();

  std::printf("Table III analogue: HEC coarsening on host "
              "(Backend::Serial)\n\n");
  std::printf("%-14s %8s %7s %10s %10s\n", "Graph", "t_c(s)", "%GrCo",
              "Hash/Sort", "SpGEMM/Sort");
  print_rule(54);

  for (const bool skewed_group : {false, true}) {
    std::vector<double> grco, hash_r, spgemm_r;
    for (const SuiteEntry& e : suite()) {
      if (e.skewed != skewed_group) continue;
      const Csr g = e.make();

      CoarsenOptions opts;
      opts.mapping = Mapping::kHec;
      opts.construct.method = Construction::kSort;
      const Hierarchy h = coarsen_multilevel(exec, g, opts);
      const double t_c = h.total_seconds();
      const double sort_time = h.construct_seconds();
      const double pct = t_c > 0 ? 100.0 * sort_time / t_c : 0;
      const double hash_time = construct_time(exec, g, Construction::kHash);
      const double spgemm_time =
          construct_time(exec, g, Construction::kSpgemm);
      const double hr = sort_time > 0 ? hash_time / sort_time : 0;
      const double sr = sort_time > 0 ? spgemm_time / sort_time : 0;

      std::printf("%-14s %8.3f %7.0f %10.2f %10.2f\n", e.name.c_str(), t_c,
                  pct, hr, sr);
      grco.push_back(pct);
      hash_r.push_back(hr);
      spgemm_r.push_back(sr);
    }
    std::printf("%-14s %8s %7.0f %10.2f %10.2f   (%s group)\n", "GeoMean",
                "", geomean(grco), geomean(hash_r), geomean(spgemm_r),
                skewed_group ? "skewed" : "regular");
    print_rule(54);
  }
  return 0;
}

int main() { return mgc::bench::bench_main("table3_construction_host", bench_body); }
