// Google-benchmark microbenchmarks for the portability core: parallel
// primitives, permutation generation, and the sorting kernels. These
// quantify the per-primitive costs the table benches aggregate.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "core/exec.hpp"
#include "core/permutation.hpp"
#include "core/prng.hpp"
#include "core/sorting.hpp"

namespace {

using namespace mgc;

Exec exec_for(int backend) {
  return backend == 0 ? Exec::serial() : Exec::threads();
}

void BM_ParallelFor(benchmark::State& state) {
  const Exec exec = exec_for(static_cast<int>(state.range(0)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    parallel_for(exec, n, [&](std::size_t i) { out[i] = splitmix64(i); });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelFor)
    ->Args({0, 1 << 16})
    ->Args({1, 1 << 16})
    ->Args({0, 1 << 20})
    ->Args({1, 1 << 20});

void BM_ParallelReduce(benchmark::State& state) {
  const Exec exec = exec_for(static_cast<int>(state.range(0)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    auto sum = parallel_sum<std::uint64_t>(
        exec, n, [](std::size_t i) { return splitmix64(i); });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelReduce)->Args({0, 1 << 20})->Args({1, 1 << 20});

void BM_ExclusiveScan(benchmark::State& state) {
  const Exec exec = exec_for(static_cast<int>(state.range(0)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  std::vector<std::int64_t> values(n, 3);
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(values.begin(), values.end(), 3);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        parallel_exclusive_scan(exec, values.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExclusiveScan)->Args({0, 1 << 20})->Args({1, 1 << 20});

void BM_ParGenPerm(benchmark::State& state) {
  const Exec exec = exec_for(static_cast<int>(state.range(0)));
  const vid_t n = static_cast<vid_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(par_gen_perm(exec, n, 42));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ParGenPerm)->Args({0, 1 << 18})->Args({1, 1 << 18});

void BM_RadixSortPairs(benchmark::State& state) {
  const Exec exec = exec_for(static_cast<int>(state.range(0)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  std::vector<std::uint64_t> keys(n), vals(n);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = splitmix64(i);
      vals[i] = i;
    }
    state.ResumeTiming();
    radix_sort_pairs(exec, keys.data(), vals.data(), n);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSortPairs)->Args({0, 1 << 18})->Args({1, 1 << 18});

void BM_StdSortReference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs(n);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < n; ++i) pairs[i] = {splitmix64(i), i};
    state.ResumeTiming();
    std::sort(pairs.begin(), pairs.end());
    benchmark::DoNotOptimize(pairs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StdSortReference)->Arg(1 << 18);

void BM_BitonicSortSegment(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<vid_t> keys(n);
  std::vector<wgt_t> vals(n);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<vid_t>(splitmix64(i) & 0xffff);
      vals[i] = 1;
    }
    state.ResumeTiming();
    bitonic_sort_pairs(keys.data(), vals.data(), n);
    benchmark::DoNotOptimize(keys.data());
  }
}
BENCHMARK(BM_BitonicSortSegment)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
