// Table IV reproduction: comparison of coarse-mapping methods on the
// device backend. For each graph we report the ratio of total multilevel
// coarsening time using HEM / mtMetis two-hop / GOSH / MIS2 to the HEC
// time, the number of levels per method, and the average coarsening ratio
// cr = (n_0/n_l)^(1/(l-1)) for HEC and mtMetis.
//
// Runs that exceed the scaled memory budget print OOM, mirroring the
// paper's out-of-memory rows (stalling HEM blows up the hierarchy).

#include <cstdio>
#include <optional>
#include <vector>

#include "suite.hpp"

namespace {

using namespace mgc;

struct RunInfo {
  double seconds = 0;
  int levels = 0;
  double cr = 0;
};

std::optional<RunInfo> run(const Exec& exec, const Csr& g, Mapping mapping,
                           std::size_t budget) {
  CoarsenOptions opts;
  opts.mapping = mapping;
  opts.construct.method = Construction::kSort;
  opts.memory_budget_bytes = budget;
  try {
    const Hierarchy h = coarsen_multilevel(exec, g, opts);
    return RunInfo{h.total_seconds(), h.num_levels(),
                   h.avg_coarsening_ratio()};
  } catch (const MemoryBudgetExceeded&) {
    return std::nullopt;
  }
}

}  // namespace

// The body runs under bench_main (bottom of file) so MGC_PROFILE /
// MGC_TRACE reports flush even on an error path.
static int bench_body() {
  using namespace mgc;
  using namespace mgc::bench;
  const Exec exec = Exec::threads();

  std::printf("Table IV analogue: coarsening methods on device "
              "(time ratios vs HEC, levels, avg coarsening ratio)\n\n");
  std::printf("%-14s | %6s %8s %6s %6s | %4s %4s %5s %5s %5s | %6s %8s\n",
              "Graph", "HEM", "mtMetis", "GOSH", "MIS2", "HEC", "HEM",
              "mtMts", "GOSH", "MIS2", "crHEC", "crMtMts");
  print_rule(100);

  const Mapping alts[] = {Mapping::kHem, Mapping::kMtMetis, Mapping::kGosh,
                          Mapping::kMis2};

  for (const bool skewed_group : {false, true}) {
    std::vector<std::vector<double>> ratio_acc(4);
    std::vector<double> cr_hec_acc, cr_mt_acc;
    for (const SuiteEntry& e : suite()) {
      if (e.skewed != skewed_group) continue;
      const Csr g = e.make();
      // Memory budget: the paper's GPU holds ~48m bytes of working set in
      // 11 GB; we scale the same proportionality to our graphs. A stalled
      // method accumulates hundreds of nearly-equal-size levels and blows
      // through this; healthy methods use ~2x the input graph.
      const std::size_t budget = g.memory_bytes() * 8;
      const auto hec = run(exec, g, Mapping::kHec, budget);
      if (!hec) {
        std::printf("%-14s  HEC OOM\n", e.name.c_str());
        continue;
      }
      std::printf("%-14s |", e.name.c_str());
      std::vector<std::optional<RunInfo>> alt_infos;
      for (std::size_t a = 0; a < 4; ++a) {
        alt_infos.push_back(run(exec, g, alts[a], budget));
        if (alt_infos.back() && hec->seconds > 0) {
          const double ratio = alt_infos.back()->seconds / hec->seconds;
          ratio_acc[a].push_back(ratio);
          std::printf(a == 1 ? " %8.2f" : " %6.2f", ratio);
        } else {
          std::printf(a == 1 ? " %8s" : " %6s", "OOM");
        }
      }
      std::printf(" | %4d", hec->levels);
      for (std::size_t a = 0; a < 4; ++a) {
        if (alt_infos[a]) {
          std::printf(" %4d", alt_infos[a]->levels);
        } else {
          std::printf(" %4s", "OOM");
        }
      }
      std::printf(" | %6.2f", hec->cr);
      if (alt_infos[1]) {
        std::printf(" %8.2f", alt_infos[1]->cr);
        cr_mt_acc.push_back(alt_infos[1]->cr);
      } else {
        std::printf(" %8s", "OOM");
      }
      cr_hec_acc.push_back(hec->cr);
      std::printf("\n");
    }
    std::printf("%-14s | %6.2f %8.2f %6.2f %6.2f |"
                "                           | %6.2f %8.2f  (%s geomean)\n",
                "GeoMean", geomean(ratio_acc[0]), geomean(ratio_acc[1]),
                geomean(ratio_acc[2]), geomean(ratio_acc[3]),
                geomean(cr_hec_acc), geomean(cr_mt_acc),
                skewed_group ? "skewed" : "regular");
    print_rule(100);
  }
  return 0;
}

int main() { return mgc::bench::bench_main("table4_mapping_methods", bench_body); }
