#pragma once
// The 20-graph evaluation suite (bench analogue of paper Table I).
//
// Each paper graph is replaced by a scaled-down synthetic generator chosen
// to match its domain structure and — crucially — its degree-skew class
// (regular vs skewed), since that is the variable the paper's analysis
// keys on. Sizes are chosen so the full harness runs in minutes on one
// core. Every graph is preprocessed exactly like the paper: undirected,
// self-loop-free, largest connected component.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "mgc.hpp"

namespace mgc::bench {

struct SuiteEntry {
  std::string name;    ///< paper graph this stands in for
  std::string domain;  ///< paper domain tag
  bool skewed;         ///< paper group (regular vs skewed-degree)
  std::function<Csr()> make;
};

inline std::vector<SuiteEntry> suite() {
  return {
      // ---- regular group (ordered as in Table I) ----
      {"HV15R", "cfd", false, [] { return make_rgg(16000, 0.02185, 101); }},
      {"rgg24", "syn", false, [] { return make_rgg(32768, 0.01247, 102); }},
      {"nlpkkt160", "opt", false, [] { return make_grid3d(28, 28, 28); }},
      {"europeOsm", "road", false,
       [] { return make_road_like(180, 180, 0.42, 104); }},
      {"CubeCoup", "fem", false, [] { return make_grid3d(24, 24, 24); }},
      {"delaunay24", "syn", false,
       [] { return make_triangulated_grid(160, 160, 106); }},
      {"Flan1565", "fem", false, [] { return make_rgg(12000, 0.02725, 107); }},
      {"MLGeer", "sim", false, [] { return make_grid3d(26, 26, 13); }},
      {"cage15", "bio", false,
       [] { return largest_connected_component(make_erdos_renyi(20000, 9.0, 109)); }},
      {"channel050", "sim", false, [] { return make_grid3d(30, 30, 15); }},
      // ---- skewed-degree group ----
      {"ic04", "www", true,
       [] { return largest_connected_component(make_chung_lu(24000, 20.0, 1.9, 201)); }},
      {"Orkut", "soc", true,
       [] { return largest_connected_component(make_chung_lu(24000, 30.0, 2.2, 202)); }},
      {"vasStokes4M", "vlsi", true,
       [] { return largest_connected_component(make_chung_lu(20000, 22.0, 2.8, 203)); }},
      {"kmerU1a", "bio", true,
       [] { return largest_connected_component(make_kmer_like(40000, 0.002, 204)); }},
      {"kron21", "syn", true,
       [] { return largest_connected_component(make_rmat(14, 12, 205)); }},
      {"products", "ecom", true,
       [] { return largest_connected_component(make_chung_lu(16000, 26.0, 2.3, 206)); }},
      {"hollywood09", "soc", true,
       [] { return largest_connected_component(make_chung_lu(10000, 50.0, 2.1, 207)); }},
      {"mycielskian17", "syn", true, [] { return make_mycielskian(10); }},
      {"citation", "cit", true,
       [] { return largest_connected_component(make_chung_lu(14000, 20.0, 2.4, 208)); }},
      {"ppa", "bio", true,
       [] { return largest_connected_component(make_chung_lu(6000, 70.0, 2.5, 209)); }},
  };
}

/// Geometric mean helper for the "GeoMean" rows of the paper's tables.
inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0;
  int count = 0;
  for (const double x : xs) {
    if (x > 0) {
      log_sum += std::log(x);
      ++count;
    }
  }
  return count > 0 ? std::exp(log_sum / count) : 0.0;
}

inline void print_rule(int width = 86) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Opt-in profiling hook shared by every bench binary: when the
/// MGC_PROFILE environment variable names a file, enables `mgc::prof` for
/// the bench's lifetime and writes the mgc-profile JSON report there on
/// exit (same schema as `mgc_cli --profile`; see docs/profiling.md).
///
///   MGC_PROFILE=fig3.json ./build/bench/fig3_hec_scaling
class ProfileSession {
 public:
  explicit ProfileSession(const char* bench_name) {
    const char* p = std::getenv("MGC_PROFILE");
    if (p == nullptr || *p == '\0') return;
    path_ = p;
    prof::enable();
    prof::set_meta("tool", "bench");
    prof::set_meta("bench", bench_name);
  }
  ~ProfileSession() {
    if (path_.empty()) return;
    if (prof::write_json_file(path_)) {
      std::fprintf(stderr, "profile written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "failed to write profile %s\n", path_.c_str());
    }
  }

  ProfileSession(const ProfileSession&) = delete;
  ProfileSession& operator=(const ProfileSession&) = delete;

 private:
  std::string path_;
};

}  // namespace mgc::bench
