#pragma once
// The 20-graph evaluation suite (bench analogue of paper Table I).
//
// Each paper graph is replaced by a scaled-down synthetic generator chosen
// to match its domain structure and — crucially — its degree-skew class
// (regular vs skewed), since that is the variable the paper's analysis
// keys on. Sizes are chosen so the full harness runs in minutes on one
// core. Every graph is preprocessed exactly like the paper: undirected,
// self-loop-free, largest connected component.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "mgc.hpp"

namespace mgc::bench {

struct SuiteEntry {
  std::string name;    ///< paper graph this stands in for
  std::string domain;  ///< paper domain tag
  bool skewed;         ///< paper group (regular vs skewed-degree)
  std::function<Csr()> make;
};

inline std::vector<SuiteEntry> suite() {
  return {
      // ---- regular group (ordered as in Table I) ----
      {"HV15R", "cfd", false, [] { return make_rgg(16000, 0.02185, 101); }},
      {"rgg24", "syn", false, [] { return make_rgg(32768, 0.01247, 102); }},
      {"nlpkkt160", "opt", false, [] { return make_grid3d(28, 28, 28); }},
      {"europeOsm", "road", false,
       [] { return make_road_like(180, 180, 0.42, 104); }},
      {"CubeCoup", "fem", false, [] { return make_grid3d(24, 24, 24); }},
      {"delaunay24", "syn", false,
       [] { return make_triangulated_grid(160, 160, 106); }},
      {"Flan1565", "fem", false, [] { return make_rgg(12000, 0.02725, 107); }},
      {"MLGeer", "sim", false, [] { return make_grid3d(26, 26, 13); }},
      {"cage15", "bio", false,
       [] { return largest_connected_component(make_erdos_renyi(20000, 9.0, 109)); }},
      {"channel050", "sim", false, [] { return make_grid3d(30, 30, 15); }},
      // ---- skewed-degree group ----
      {"ic04", "www", true,
       [] { return largest_connected_component(make_chung_lu(24000, 20.0, 1.9, 201)); }},
      {"Orkut", "soc", true,
       [] { return largest_connected_component(make_chung_lu(24000, 30.0, 2.2, 202)); }},
      {"vasStokes4M", "vlsi", true,
       [] { return largest_connected_component(make_chung_lu(20000, 22.0, 2.8, 203)); }},
      {"kmerU1a", "bio", true,
       [] { return largest_connected_component(make_kmer_like(40000, 0.002, 204)); }},
      {"kron21", "syn", true,
       [] { return largest_connected_component(make_rmat(14, 12, 205)); }},
      {"products", "ecom", true,
       [] { return largest_connected_component(make_chung_lu(16000, 26.0, 2.3, 206)); }},
      {"hollywood09", "soc", true,
       [] { return largest_connected_component(make_chung_lu(10000, 50.0, 2.1, 207)); }},
      {"mycielskian17", "syn", true, [] { return make_mycielskian(10); }},
      {"citation", "cit", true,
       [] { return largest_connected_component(make_chung_lu(14000, 20.0, 2.4, 208)); }},
      {"ppa", "bio", true,
       [] { return largest_connected_component(make_chung_lu(6000, 70.0, 2.5, 209)); }},
  };
}

/// Geometric mean helper for the "GeoMean" rows of the paper's tables.
inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0;
  int count = 0;
  for (const double x : xs) {
    if (x > 0) {
      log_sum += std::log(x);
      ++count;
    }
  }
  return count > 0 ? std::exp(log_sum / count) : 0.0;
}

inline void print_rule(int width = 86) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Opt-in observability hook shared by every bench binary: when the
/// MGC_PROFILE environment variable names a file, enables `mgc::prof` for
/// the bench's lifetime and writes the mgc-profile JSON report there on
/// exit (same schema as `mgc_cli --profile`; see docs/profiling.md);
/// when MGC_TRACE names a file, enables `mgc::trace` (plus prof, which
/// feeds the region events) and writes the Chrome trace-event JSON there
/// (loadable in chrome://tracing / Perfetto; see docs/tracing.md). Both
/// may be set at once, mirroring `mgc_cli --profile= --trace=`.
///
///   MGC_PROFILE=fig3.json MGC_TRACE=fig3.trace.json \
///     ./build/bench/fig3_hec_scaling
///
/// The session flushes in its destructor; wrap bench bodies in
/// bench_main() below so the destructor runs even when the body throws
/// (an exception escaping main() would skip unwinding entirely).
class ProfileSession {
 public:
  explicit ProfileSession(const char* bench_name) {
    const std::string p = guard::env_str("MGC_PROFILE");
    if (!p.empty()) {
      profile_path_ = p;
      prof::enable();
      prof::set_meta("tool", "bench");
      prof::set_meta("bench", bench_name);
    }
    const std::string t = guard::env_str("MGC_TRACE");
    if (!t.empty()) {
      trace_path_ = t;
      trace::enable();
      // Region duration events are emitted from prof's region-exit hook,
      // so a trace without prof enabled would hold only chunk slices.
      prof::enable();
      prof::set_meta("tool", "bench");
      prof::set_meta("bench", bench_name);
    }
  }
  ~ProfileSession() { flush(); }

  /// Writes any configured outputs. Idempotent: the destructor is a
  /// no-op for anything already flushed.
  void flush() {
    if (!profile_path_.empty()) {
      const guard::Status st = prof::write_json_file(profile_path_);
      if (st.ok()) {
        std::fprintf(stderr, "profile written to %s\n",
                     profile_path_.c_str());
      } else {
        std::fprintf(stderr, "failed to write profile: %s\n",
                     st.message.c_str());
      }
      profile_path_.clear();
    }
    if (!trace_path_.empty()) {
      const guard::Status st = trace::write_chrome_json_file(trace_path_);
      if (st.ok()) {
        std::fprintf(stderr, "trace written to %s\n", trace_path_.c_str());
      } else {
        std::fprintf(stderr, "failed to write trace: %s\n",
                     st.message.c_str());
      }
      trace_path_.clear();
    }
  }

  ProfileSession(const ProfileSession&) = delete;
  ProfileSession& operator=(const ProfileSession&) = delete;

 private:
  std::string profile_path_;
  std::string trace_path_;
};

/// Runs a bench body (any int-returning callable) under a ProfileSession
/// with an error boundary, so MGC_PROFILE / MGC_TRACE outputs are flushed
/// even when the body throws — an exception escaping main() would skip
/// stack unwinding and lose the whole report:
///
///   static int bench_body() { ...; return 0; }
///   int main() { return mgc::bench::bench_main("fig3", bench_body); }
template <class Body>
int bench_main(const char* bench_name, Body&& body) {
  ProfileSession session(bench_name);
  try {
    return body();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", bench_name, e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "%s: error: unknown exception\n", bench_name);
    return 1;
  }
}

}  // namespace mgc::bench
