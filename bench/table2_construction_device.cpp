// Table II reproduction: HEC-based multilevel coarsening on the "device"
// (Backend::Threads), comparing graph-construction strategies.
//
// Columns mirror the paper: total coarsening time with sort-based
// construction (t_c), the percentage of that time spent in construction
// (%GrCo), and the ratio of total construction time using hashing / SpGEMM
// to the sort-based construction time. GeoMean rows are printed per group.

#include <cstdio>
#include <vector>

#include "suite.hpp"

namespace {

using namespace mgc;

struct Row {
  double t_c = 0;
  double grco_pct = 0;
  double hash_ratio = 0;
  double spgemm_ratio = 0;
};

double construct_time(const Exec& exec, const Csr& g, Construction method,
                      std::uint64_t seed) {
  CoarsenOptions opts;
  opts.mapping = Mapping::kHec;
  opts.construct.method = method;
  opts.seed = seed;
  const Hierarchy h = coarsen_multilevel(exec, g, opts);
  return h.construct_seconds();
}

Row run_graph(const Exec& exec, const Csr& g) {
  Row row;
  CoarsenOptions opts;
  opts.mapping = Mapping::kHec;
  opts.construct.method = Construction::kSort;
  const Hierarchy h = coarsen_multilevel(exec, g, opts);
  row.t_c = h.total_seconds();
  row.grco_pct = row.t_c > 0 ? 100.0 * h.construct_seconds() / row.t_c : 0;
  const double sort_time = h.construct_seconds();
  const double hash_time = construct_time(exec, g, Construction::kHash, 42);
  const double spgemm_time =
      construct_time(exec, g, Construction::kSpgemm, 42);
  row.hash_ratio = sort_time > 0 ? hash_time / sort_time : 0;
  row.spgemm_ratio = sort_time > 0 ? spgemm_time / sort_time : 0;
  return row;
}

}  // namespace

// The body runs under bench_main (bottom of file) so MGC_PROFILE /
// MGC_TRACE reports flush even on an error path.
static int bench_body() {
  using namespace mgc;
  using namespace mgc::bench;
  const Exec exec = Exec::threads();

  std::printf("Table II analogue: HEC coarsening on device "
              "(Backend::Threads, %d threads)\n\n",
              exec.concurrency());
  std::printf("%-14s %8s %7s %10s %10s\n", "Graph", "t_c(s)", "%GrCo",
              "Hash/Sort", "SpGEMM/Sort");
  print_rule(54);

  for (const bool skewed_group : {false, true}) {
    std::vector<double> grco, hash_r, spgemm_r;
    for (const SuiteEntry& e : suite()) {
      if (e.skewed != skewed_group) continue;
      const Csr g = e.make();
      const Row row = run_graph(exec, g);
      std::printf("%-14s %8.3f %7.0f %10.2f %10.2f\n", e.name.c_str(),
                  row.t_c, row.grco_pct, row.hash_ratio, row.spgemm_ratio);
      grco.push_back(row.grco_pct);
      hash_r.push_back(row.hash_ratio);
      spgemm_r.push_back(row.spgemm_ratio);
    }
    std::printf("%-14s %8s %7.0f %10.2f %10.2f   (%s group)\n", "GeoMean",
                "", geomean(grco), geomean(hash_r), geomean(spgemm_r),
                skewed_group ? "skewed" : "regular");
    print_rule(54);
  }
  return 0;
}

int main() { return mgc::bench::bench_main("table2_construction_device", bench_body); }
