// Figure 1 / Figure 2 reproduction: one level of coarsening of a small
// demo graph under every mapping method, plus HEC edge classification and
// heavy-neighbor digraph statistics.

#include <cstdio>

#include "mgc.hpp"
#include "suite.hpp"

// The body runs under bench_main (bottom of file) so MGC_PROFILE /
// MGC_TRACE reports flush even on an error path.
static int bench_body() {
  using namespace mgc;
  const Exec exec = Exec::threads();
  const Csr g = make_triangulated_grid(5, 4, 7);

  std::printf("Fig.1 analogue: one level of coarsening, demo graph n=%d "
              "m=%lld\n\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()));
  std::printf("%-10s %6s %8s %10s\n", "method", "nc", "ratio", "coarse m");
  const Mapping methods[] = {Mapping::kHec,  Mapping::kHem,
                             Mapping::kMtMetis, Mapping::kGosh,
                             Mapping::kMis2, Mapping::kHec3};
  for (const Mapping m : methods) {
    const CoarseMap cm = compute_mapping(m, exec, g, 1234);
    const Csr coarse = construct_coarse_graph(exec, g, cm);
    std::printf("%-10s %6d %8.2f %10lld\n", mapping_name(m).c_str(), cm.nc,
                coarsening_ratio(cm, g.num_vertices()),
                static_cast<long long>(coarse.num_edges()));
  }

  // Fig. 2: classify heavy edges as create/inherit/skip by replaying the
  // sequential HEC visit order.
  const std::vector<vid_t> h = heavy_neighbors(exec, g);
  const std::vector<vid_t> perm = gen_perm(g.num_vertices(), 1234);
  std::vector<vid_t> m(static_cast<std::size_t>(g.num_vertices()),
                       kUnmapped);
  int create = 0, inherit = 0, skip = 0;
  vid_t nc = 0;
  for (const vid_t u : perm) {
    const vid_t v = h[static_cast<std::size_t>(u)];
    if (m[static_cast<std::size_t>(u)] != kUnmapped) {
      ++skip;
      continue;
    }
    if (m[static_cast<std::size_t>(v)] == kUnmapped) {
      m[static_cast<std::size_t>(v)] = nc++;
      ++create;
    } else {
      ++inherit;
    }
    m[static_cast<std::size_t>(u)] = m[static_cast<std::size_t>(v)];
  }
  int mutual = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const vid_t v = h[static_cast<std::size_t>(u)];
    if (v != u && h[static_cast<std::size_t>(v)] == u && u < v) ++mutual;
  }
  std::printf("\nFig.2 analogue: heavy-edge classes — create=%d inherit=%d "
              "skip=%d; mutual heavy pairs=%d (pseudoforest 2-cycles)\n",
              create, inherit, skip, mutual);
  return 0;
}

int main() { return mgc::bench::bench_main("fig1_one_level", bench_body); }
