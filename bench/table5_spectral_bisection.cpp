// Table V reproduction: multilevel spectral bisection on the device with
// different coarsening methods. Reports total partitioning time with HEC
// coarsening, the percentage of time in coarsening, the edge cut, and the
// cut ratios of HEM- and mtMetis-coarsened runs to the HEC run.

#include <cstdio>
#include <optional>
#include <vector>

#include "suite.hpp"

namespace {

using namespace mgc;

std::optional<PartitionResult> run(const Exec& exec, const Csr& g,
                                   Mapping mapping, std::size_t budget) {
  CoarsenOptions copts;
  copts.mapping = mapping;
  copts.construct.method = Construction::kSort;
  copts.memory_budget_bytes = budget;
  SpectralOptions sopts;
  sopts.max_iterations = 2000;
  try {
    return multilevel_spectral_bisect(exec, g, copts, sopts);
  } catch (const MemoryBudgetExceeded&) {
    return std::nullopt;
  }
}

}  // namespace

// The body runs under bench_main (bottom of file) so MGC_PROFILE /
// MGC_TRACE reports flush even on an error path.
static int bench_body() {
  using namespace mgc;
  using namespace mgc::bench;
  const Exec exec = Exec::threads();

  std::printf("Table V analogue: spectral bisection on device with "
              "different coarsening methods\n\n");
  std::printf("%-14s %9s %6s %12s %9s %9s\n", "Graph", "Time(s)", "%Coa",
              "Edge cut", "HEM/HEC", "mtMts/HEC");
  print_rule(64);

  for (const bool skewed_group : {false, true}) {
    std::vector<double> coa_pct, hem_ratio, mt_ratio;
    for (const SuiteEntry& e : suite()) {
      if (e.skewed != skewed_group) continue;
      const Csr g = e.make();
      const std::size_t budget = g.memory_bytes() * 8;
      const auto hec = run(exec, g, Mapping::kHec, budget);
      if (!hec) {
        std::printf("%-14s  HEC OOM\n", e.name.c_str());
        continue;
      }
      const auto hem = run(exec, g, Mapping::kHem, budget);
      const auto mt = run(exec, g, Mapping::kMtMetis, budget);
      const double pct = 100.0 * hec->coarsen_fraction();
      std::printf("%-14s %9.2f %6.0f %12lld", e.name.c_str(),
                  hec->total_seconds(), pct,
                  static_cast<long long>(hec->cut));
      coa_pct.push_back(pct);
      if (hem && hec->cut > 0) {
        const double r = static_cast<double>(hem->cut) /
                         static_cast<double>(hec->cut);
        hem_ratio.push_back(r);
        std::printf(" %9.2f", r);
      } else {
        std::printf(" %9s", "OOM");
      }
      if (mt && hec->cut > 0) {
        const double r =
            static_cast<double>(mt->cut) / static_cast<double>(hec->cut);
        mt_ratio.push_back(r);
        std::printf(" %9.2f\n", r);
      } else {
        std::printf(" %9s\n", "OOM");
      }
    }
    std::printf("%-14s %9s %6.0f %12s %9.2f %9.2f  (%s geomean)\n",
                "GeoMean", "", geomean(coa_pct), "", geomean(hem_ratio),
                geomean(mt_ratio), skewed_group ? "skewed" : "regular");
    print_rule(64);
  }
  return 0;
}

int main() { return mgc::bench::bench_main("table5_spectral_bisection", bench_body); }
