// Table VI reproduction: multilevel bisection with FM refinement and
// device HEC coarsening, compared against (a) the same pipeline with host
// coarsening, (b) device spectral partitioning, and (c) the Metis-like
// serial baselines ("Mts" = serial HEM multilevel FM, "mtMts" = HEM +
// two-hop multilevel FM). Also reports the spectral-vs-mtMetis time ratio.

#include <cstdio>
#include <vector>

#include "suite.hpp"

namespace {

using namespace mgc;

PartitionResult fm_run(const Exec& exec, const Csr& g, Mapping mapping) {
  CoarsenOptions copts;
  copts.mapping = mapping;
  copts.construct.method = Construction::kSort;
  return multilevel_fm_bisect(exec, g, copts);
}

}  // namespace

// The body runs under bench_main (bottom of file) so MGC_PROFILE /
// MGC_TRACE reports flush even on an error path.
static int bench_body() {
  using namespace mgc;
  using namespace mgc::bench;
  const Exec dev = Exec::threads();
  const Exec host = Exec::serial();

  std::printf("Table VI analogue: FM bisection with parallel HEC "
              "coarsening vs spectral and Metis-like baselines\n\n");
  std::printf("%-14s %12s | %8s %8s %6s %6s | %9s\n", "Graph",
              "FM+dev-HEC", "FM+host", "Spec", "Mts", "mtMts",
              "tSpec/tmtMts");
  std::printf("%-14s %12s | %8s %8s %6s %6s | %9s\n", "", "edge cut",
              "(cut ratios vs FM+dev-HEC)", "", "", "", "");
  print_rule(76);

  for (const bool skewed_group : {false, true}) {
    std::vector<double> r_host, r_spec, r_mts, r_mtmts, r_time;
    for (const SuiteEntry& e : suite()) {
      if (e.skewed != skewed_group) continue;
      const Csr g = e.make();

      const PartitionResult fm_dev = fm_run(dev, g, Mapping::kHec);
      const PartitionResult fm_host = fm_run(host, g, Mapping::kHec);
      SpectralOptions sopts;
      sopts.max_iterations = 2000;
      CoarsenOptions copts;
      copts.mapping = Mapping::kHec;
      const PartitionResult spec =
          multilevel_spectral_bisect(dev, g, copts, sopts);
      const PartitionResult mts = metis_like_bisect(g, MetisMode::kMetis);
      const PartitionResult mtmts =
          metis_like_bisect(g, MetisMode::kMtMetis);

      const double base = static_cast<double>(std::max<wgt_t>(1, fm_dev.cut));
      const double rh = static_cast<double>(fm_host.cut) / base;
      const double rs = static_cast<double>(spec.cut) / base;
      const double rm = static_cast<double>(mts.cut) / base;
      const double rmt = static_cast<double>(mtmts.cut) / base;
      const double rt = mtmts.total_seconds() > 0
                            ? spec.total_seconds() / mtmts.total_seconds()
                            : 0;
      std::printf("%-14s %12lld | %8.2f %8.2f %6.2f %6.2f | %9.2f\n",
                  e.name.c_str(), static_cast<long long>(fm_dev.cut), rh,
                  rs, rm, rmt, rt);
      r_host.push_back(rh);
      r_spec.push_back(rs);
      r_mts.push_back(rm);
      r_mtmts.push_back(rmt);
      r_time.push_back(rt);
    }
    std::printf("%-14s %12s | %8.2f %8.2f %6.2f %6.2f | %9.2f  "
                "(%s geomean)\n",
                "GeoMean", "", geomean(r_host), geomean(r_spec),
                geomean(r_mts), geomean(r_mtmts), geomean(r_time),
                skewed_group ? "skewed" : "regular");
    print_rule(76);
  }
  return 0;
}

int main() { return mgc::bench::bench_main("table6_fm_bisection", bench_body); }
