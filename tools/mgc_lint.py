#!/usr/bin/env python3
"""mgc_lint: AST-free race-discipline lint for mgc parallel lambdas.

Flags source lines that perform a plain indexed write to an array that is
elsewhere passed to an ``atomic_*`` helper *inside the same parallel
lambda*. Mixing plain writes with atomic accesses on the same array within
one parallel region is exactly the data race the core/atomics.hpp contract
forbids, and it is the mistake easiest to make when refactoring a hot
kernel (see docs/checking.md).

The lint is deliberately AST-free — a few hundred lines of bracket
matching and regex over the raw source — so it runs in milliseconds on CI
with no compiler or libclang dependency. The trade-off is scope: it only
reasons about direct ``name[index] = ...`` writes and direct
``atomic_*(name[index], ...)`` calls on the same *named* array within one
lambda body. That catches the dominant pattern in this codebase
(everything is plain std::vector indexing) and stays silent otherwise.
The libclang-backed mgc_lint2.py covers the semantic rules this pass
cannot (see docs/static-analysis.md); both share the finding format and
allowlist grammar defined in tools/lint_common.py.

A second rule flags ``prof::Region`` objects constructed inside a
parallel lambda. Region entry/exit costs a clock read plus per-thread
tree bookkeeping, so one per *iteration* of a hot kernel both distorts
the numbers it reports and serialises on first-entry node creation;
regions belong around the dispatch, not inside it (and the tracer gets
its per-chunk timeline from core/exec.hpp's ChunkSlice, not from
Regions). See docs/profiling.md.

A third rule flags raw ``std::ofstream`` construction anywhere in the
tree. Every durable output in this codebase goes through
``guard::atomic_write_file`` (temp + fsync + rename; docs/robustness.md),
so a bare ofstream is almost always a truncation-on-crash bug waiting to
happen — a half-written profile, assignment, or checkpoint that a reader
then trusts. The only legitimate users are atomic_write_file's own
implementation and tests that *deliberately* write corrupt bytes.

Intentional benign races are allowlisted with a trailing or preceding
comment::

    m[su] = p;  // mgc-lint: racy-ok -- last-writer-wins, all writers agree

deliberate in-lambda regions with::

    prof::Region r("chunk");  // mgc-lint: region-ok -- coarse, per-chunk

and deliberate raw file writers with::

    std::ofstream out(tmp);  // mgc-lint: ofstream-ok -- <why>

A fourth rule flags raw stderr writes — ``fprintf(stderr, ...)`` or
``std::cerr`` — in serving code (any path containing "serve"). The
daemon's runtime narrative goes through ``mgc::obs::log``: structured
JSON lines, leveled, rate-limited, and stamped with the active request
id. A stray fprintf bypasses all four and turns the log stream back into
unparseable prose (docs/observability.md). Legitimate users — usage
text, last-resort error boundaries that must work before logging is
configured — annotate with::

    std::fprintf(stderr, ...);  // mgc-lint: stderr-ok -- <why>

Usage::

    python3 tools/mgc_lint.py src [more dirs/files...]
    python3 tools/mgc_lint.py --list-parallel src   # debug: show lambdas

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass

from lint_common import (
    Finding,
    allowlisted,
    collect_files,
    match_forward,
    print_findings,
    read_source,
    strip_comments_and_strings,
)

# Calls that open a parallel region whose lambda body we scan.
PARALLEL_CALLS = re.compile(
    r"\b(parallel_for|parallel_reduce|parallel_sum|parallel_exclusive_scan)"
    r"\s*(?:<[^;{}()]*>)?\s*\("
)

# atomic helper applied to an indexed array element: captures the array name.
ATOMIC_TARGET = re.compile(
    r"\batomic_(?:cas|fetch_add|fetch_max|fetch_min|load|store)\s*\(\s*"
    r"([A-Za-z_]\w*)\s*\["
)

# prof::Region constructed (named variable or temporary) — a write point
# we only care about inside parallel lambda bodies.
REGION_CTOR = re.compile(r"\bprof\s*::\s*Region\b")

# Raw output-stream construction: durable writes must go through
# guard::atomic_write_file (see module docstring).
OFSTREAM_CTOR = re.compile(r"\bstd\s*::\s*ofstream\b")

# Raw stderr writes; flagged only in serve-scoped paths (see module
# docstring). The stderr identifier is an argument, not a string literal,
# so it survives strip_comments_and_strings.
RAW_STDERR = re.compile(r"\bfprintf\s*\(\s*stderr\b|\bstd\s*::\s*cerr\b")


def serve_scoped(path: str) -> bool:
    """True for files whose path marks them as serving code."""
    return "serve" in path.replace("\\", "/")

ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "|=", "&=", "^=", "<<=", ">>=")


@dataclass
class Lambda:
    start: int  # offset of '[' of the capture list
    body_start: int  # offset just after '{'
    body_end: int  # offset of matching '}'


def find_parallel_lambdas(clean: str) -> list[Lambda]:
    """Lambdas passed (possibly not as the last argument) to parallel_*
    dispatch calls. We scan the whole argument list for `[...] (...) {...}`
    or `[...] {...}` shapes."""
    lambdas: list[Lambda] = []
    for m in PARALLEL_CALLS.finditer(clean):
        call_open = m.end() - 1  # offset of '('
        call_close = match_forward(clean, call_open, "(", ")")
        if call_close < 0:
            continue
        i = call_open + 1
        while i < call_close:
            if clean[i] == "[":
                cap_close = match_forward(clean, i, "[", "]")
                if cap_close < 0 or cap_close > call_close:
                    break
                j = cap_close + 1
                while j < call_close and clean[j].isspace():
                    j += 1
                if j < call_close and clean[j] == "(":
                    params_close = match_forward(clean, j, "(", ")")
                    if params_close < 0:
                        break
                    j = params_close + 1
                    while j < call_close and clean[j].isspace():
                        j += 1
                    # skip specifiers like mutable / noexcept / -> T
                    while j < call_close and clean[j] not in "{,)":
                        j += 1
                if j < call_close and clean[j] == "{":
                    body_close = match_forward(clean, j, "{", "}")
                    if body_close < 0:
                        break
                    lambdas.append(Lambda(i, j + 1, body_close))
                    i = body_close + 1
                    continue
                i = cap_close + 1
            else:
                i += 1
    return lambdas


def plain_indexed_writes(body: str, array: str) -> list[int]:
    """Offsets (into body) of plain writes `array[...] op= ...` / ++ / --."""
    hits: list[int] = []
    pat = re.compile(r"\b" + re.escape(array) + r"\s*\[")
    for m in pat.finditer(body):
        open_br = m.end() - 1
        close_br = match_forward(body, open_br, "[", "]")
        if close_br < 0:
            continue
        # What precedes? ++x[i] / --x[i] are writes.
        before = body[: m.start()].rstrip()
        if before.endswith("++") or before.endswith("--"):
            hits.append(m.start())
            continue
        j = close_br + 1
        while j < len(body) and body[j].isspace():
            j += 1
        rest = body[j:]
        if rest.startswith("++") or rest.startswith("--"):
            hits.append(m.start())
            continue
        for op in ASSIGN_OPS:
            if rest.startswith(op):
                # Exclude == and also => (not C++, but cheap to guard).
                if op == "=" and (rest.startswith("==") or rest.startswith("=>")):
                    break
                hits.append(m.start())
                break
    return hits


def scan_file(path: str) -> list[Finding]:
    text = read_source(path)
    if text is None:
        return []
    raw_lines = text.splitlines()
    clean = strip_comments_and_strings(text)
    findings: list[Finding] = []
    for m in OFSTREAM_CTOR.finditer(clean):
        line_idx = clean.count("\n", 0, m.start())
        if allowlisted(raw_lines, line_idx, "bare-ofstream"):
            continue
        findings.append(
            Finding(
                path=path,
                line=line_idx + 1,
                rule="bare-ofstream",
                message="raw std::ofstream — durable output must go "
                        "through guard::atomic_write_file so a crash "
                        "cannot leave a truncated file",
                snippet=raw_lines[line_idx].strip(),
            )
        )
    if serve_scoped(path):
        for m in RAW_STDERR.finditer(clean):
            line_idx = clean.count("\n", 0, m.start())
            if allowlisted(raw_lines, line_idx, "raw-stderr-in-serve"):
                continue
            findings.append(
                Finding(
                    path=path,
                    line=line_idx + 1,
                    rule="raw-stderr-in-serve",
                    message="raw stderr write in serving code — use "
                            "obs::log so the daemon's runtime narrative "
                            "stays structured, leveled, and rate-limited",
                    snippet=raw_lines[line_idx].strip(),
                )
            )
    for lam in find_parallel_lambdas(clean):
        body = clean[lam.body_start : lam.body_end]
        for m in REGION_CTOR.finditer(body):
            abs_off = lam.body_start + m.start()
            line_idx = clean.count("\n", 0, abs_off)
            if allowlisted(raw_lines, line_idx, "region-in-parallel"):
                continue
            findings.append(
                Finding(
                    path=path,
                    line=line_idx + 1,
                    rule="region-in-parallel",
                    message="prof::Region constructed inside a parallel "
                            "lambda — per-iteration region overhead "
                            "distorts the profile; hoist it around the "
                            "dispatch",
                    snippet=raw_lines[line_idx].strip(),
                )
            )
        atomic_arrays = set(ATOMIC_TARGET.findall(body))
        if not atomic_arrays:
            continue
        for array in sorted(atomic_arrays):
            for off in plain_indexed_writes(body, array):
                abs_off = lam.body_start + off
                line_idx = clean.count("\n", 0, abs_off)
                if allowlisted(raw_lines, line_idx, "racy-write"):
                    continue
                findings.append(
                    Finding(
                        path=path,
                        line=line_idx + 1,
                        rule="racy-write",
                        message=f"plain indexed write to '{array}', which "
                                f"is also passed to atomic_* in the same "
                                f"parallel lambda",
                        snippet=raw_lines[line_idx].strip(),
                    )
                )
    return findings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="+", help="files or directories to lint")
    ap.add_argument(
        "--list-parallel",
        action="store_true",
        help="debug: print every parallel lambda found, then exit",
    )
    args = ap.parse_args(argv)

    files = collect_files(args.paths)
    if not files:
        print("mgc_lint: no input files", file=sys.stderr)
        return 2

    if args.list_parallel:
        for path in files:
            text = read_source(path)
            if text is None:
                continue
            clean = strip_comments_and_strings(text)
            for lam in find_parallel_lambdas(clean):
                line = clean.count("\n", 0, lam.start) + 1
                print(f"{path}:{line}: parallel lambda")
        return 0

    all_findings: list[Finding] = []
    for path in files:
        all_findings.extend(scan_file(path))
    return print_findings(all_findings, len(files), tool="mgc_lint")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
