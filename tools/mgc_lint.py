#!/usr/bin/env python3
"""mgc_lint: AST-free race-discipline lint for mgc parallel lambdas.

Flags source lines that perform a plain indexed write to an array that is
elsewhere passed to an ``atomic_*`` helper *inside the same parallel
lambda*. Mixing plain writes with atomic accesses on the same array within
one parallel region is exactly the data race the core/atomics.hpp contract
forbids, and it is the mistake easiest to make when refactoring a hot
kernel (see docs/checking.md).

The lint is deliberately AST-free — a few hundred lines of bracket
matching and regex over the raw source — so it runs in milliseconds on CI
with no compiler or libclang dependency. The trade-off is scope: it only
reasons about direct ``name[index] = ...`` writes and direct
``atomic_*(name[index], ...)`` calls on the same *named* array within one
lambda body. That catches the dominant pattern in this codebase
(everything is plain std::vector indexing) and stays silent otherwise.

A second rule flags ``prof::Region`` objects constructed inside a
parallel lambda. Region entry/exit costs a clock read plus per-thread
tree bookkeeping, so one per *iteration* of a hot kernel both distorts
the numbers it reports and serialises on first-entry node creation;
regions belong around the dispatch, not inside it (and the tracer gets
its per-chunk timeline from core/exec.hpp's ChunkSlice, not from
Regions). See docs/profiling.md.

A third rule flags raw ``std::ofstream`` construction anywhere in the
tree. Every durable output in this codebase goes through
``guard::atomic_write_file`` (temp + fsync + rename; docs/robustness.md),
so a bare ofstream is almost always a truncation-on-crash bug waiting to
happen — a half-written profile, assignment, or checkpoint that a reader
then trusts. The only legitimate users are atomic_write_file's own
implementation and tests that *deliberately* write corrupt bytes.

Intentional benign races are allowlisted with a trailing or preceding
comment::

    m[su] = p;  // mgc-lint: racy-ok -- last-writer-wins, all writers agree

deliberate in-lambda regions with::

    prof::Region r("chunk");  // mgc-lint: region-ok -- coarse, per-chunk

and deliberate raw file writers with::

    std::ofstream out(tmp);  // mgc-lint: ofstream-ok -- <why>

Usage::

    python3 tools/mgc_lint.py src [more dirs/files...]
    python3 tools/mgc_lint.py --list-parallel src   # debug: show lambdas

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

# Calls that open a parallel region whose lambda body we scan.
PARALLEL_CALLS = re.compile(
    r"\b(parallel_for|parallel_reduce|parallel_sum|parallel_exclusive_scan)"
    r"\s*(?:<[^;{}()]*>)?\s*\("
)

# atomic helper applied to an indexed array element: captures the array name.
ATOMIC_TARGET = re.compile(
    r"\batomic_(?:cas|fetch_add|fetch_max|fetch_min|load|store)\s*\(\s*"
    r"([A-Za-z_]\w*)\s*\["
)

# prof::Region constructed (named variable or temporary) — a write point
# we only care about inside parallel lambda bodies.
REGION_CTOR = re.compile(r"\bprof\s*::\s*Region\b")

# Raw output-stream construction: durable writes must go through
# guard::atomic_write_file (see module docstring).
OFSTREAM_CTOR = re.compile(r"\bstd\s*::\s*ofstream\b")

ALLOW = "mgc-lint: racy-ok"
ALLOW_REGION = "mgc-lint: region-ok"
ALLOW_OFSTREAM = "mgc-lint: ofstream-ok"

ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "|=", "&=", "^=", "<<=", ">>=")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    kind: str  # "race" | "region"
    array: str
    snippet: str


@dataclass
class Lambda:
    start: int  # offset of '[' of the capture list
    body_start: int  # offset just after '{'
    body_end: int  # offset of matching '}'


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment/string contents with spaces, preserving offsets and
    newlines so findings keep accurate line numbers. Allowlist comments are
    handled before stripping (see scan_file)."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif ch == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def match_forward(text: str, i: int, open_ch: str, close_ch: str) -> int:
    """Offset of the bracket matching text[i] (which must be open_ch), or -1."""
    depth = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def find_parallel_lambdas(clean: str) -> list[Lambda]:
    """Lambdas passed (possibly not as the last argument) to parallel_*
    dispatch calls. We scan the whole argument list for `[...] (...) {...}`
    or `[...] {...}` shapes."""
    lambdas: list[Lambda] = []
    for m in PARALLEL_CALLS.finditer(clean):
        call_open = m.end() - 1  # offset of '('
        call_close = match_forward(clean, call_open, "(", ")")
        if call_close < 0:
            continue
        i = call_open + 1
        while i < call_close:
            if clean[i] == "[":
                cap_close = match_forward(clean, i, "[", "]")
                if cap_close < 0 or cap_close > call_close:
                    break
                j = cap_close + 1
                while j < call_close and clean[j].isspace():
                    j += 1
                if j < call_close and clean[j] == "(":
                    params_close = match_forward(clean, j, "(", ")")
                    if params_close < 0:
                        break
                    j = params_close + 1
                    while j < call_close and clean[j].isspace():
                        j += 1
                    # skip specifiers like mutable / noexcept / -> T
                    while j < call_close and clean[j] not in "{,)":
                        j += 1
                if j < call_close and clean[j] == "{":
                    body_close = match_forward(clean, j, "{", "}")
                    if body_close < 0:
                        break
                    lambdas.append(Lambda(i, j + 1, body_close))
                    i = body_close + 1
                    continue
                i = cap_close + 1
            else:
                i += 1
    return lambdas


def plain_indexed_writes(body: str, array: str) -> list[int]:
    """Offsets (into body) of plain writes `array[...] op= ...` / ++ / --."""
    hits: list[int] = []
    pat = re.compile(r"\b" + re.escape(array) + r"\s*\[")
    for m in pat.finditer(body):
        open_br = m.end() - 1
        close_br = match_forward(body, open_br, "[", "]")
        if close_br < 0:
            continue
        # What precedes? ++x[i] / --x[i] are writes.
        before = body[: m.start()].rstrip()
        if before.endswith("++") or before.endswith("--"):
            hits.append(m.start())
            continue
        j = close_br + 1
        while j < len(body) and body[j].isspace():
            j += 1
        rest = body[j:]
        if rest.startswith("++") or rest.startswith("--"):
            hits.append(m.start())
            continue
        for op in ASSIGN_OPS:
            if rest.startswith(op):
                # Exclude == and also => (not C++, but cheap to guard).
                if op == "=" and (rest.startswith("==") or rest.startswith("=>")):
                    break
                hits.append(m.start())
                break
    return hits


def allowlisted(raw_lines: list[str], line_idx: int,
                tag: str = ALLOW) -> bool:
    """True if the 0-based line or the line above carries the allow tag."""
    if tag in raw_lines[line_idx]:
        return True
    if line_idx > 0 and tag in raw_lines[line_idx - 1]:
        return True
    return False


def scan_file(path: str) -> list[Finding]:
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"mgc_lint: cannot read {path}: {e}", file=sys.stderr)
        return []
    raw_lines = text.splitlines()
    clean = strip_comments_and_strings(text)
    findings: list[Finding] = []
    for m in OFSTREAM_CTOR.finditer(clean):
        line_idx = clean.count("\n", 0, m.start())
        if allowlisted(raw_lines, line_idx, ALLOW_OFSTREAM):
            continue
        findings.append(
            Finding(
                path=path,
                line=line_idx + 1,
                kind="ofstream",
                array="",
                snippet=raw_lines[line_idx].strip(),
            )
        )
    for lam in find_parallel_lambdas(clean):
        body = clean[lam.body_start : lam.body_end]
        for m in REGION_CTOR.finditer(body):
            abs_off = lam.body_start + m.start()
            line_idx = clean.count("\n", 0, abs_off)
            if allowlisted(raw_lines, line_idx, ALLOW_REGION):
                continue
            findings.append(
                Finding(
                    path=path,
                    line=line_idx + 1,
                    kind="region",
                    array="",
                    snippet=raw_lines[line_idx].strip(),
                )
            )
        atomic_arrays = set(ATOMIC_TARGET.findall(body))
        if not atomic_arrays:
            continue
        for array in sorted(atomic_arrays):
            for off in plain_indexed_writes(body, array):
                abs_off = lam.body_start + off
                line_idx = clean.count("\n", 0, abs_off)
                if allowlisted(raw_lines, line_idx):
                    continue
                findings.append(
                    Finding(
                        path=path,
                        line=line_idx + 1,
                        kind="race",
                        array=array,
                        snippet=raw_lines[line_idx].strip(),
                    )
                )
    return findings


def collect_files(roots: list[str]) -> list[str]:
    exts = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh", ".inl")
    files: list[str] = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(exts):
                    files.append(os.path.join(dirpath, name))
    return files


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="+", help="files or directories to lint")
    ap.add_argument(
        "--list-parallel",
        action="store_true",
        help="debug: print every parallel lambda found, then exit",
    )
    args = ap.parse_args(argv)

    files = collect_files(args.paths)
    if not files:
        print("mgc_lint: no input files", file=sys.stderr)
        return 2

    if args.list_parallel:
        for path in files:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                clean = strip_comments_and_strings(f.read())
            for lam in find_parallel_lambdas(clean):
                line = clean.count("\n", 0, lam.start) + 1
                print(f"{path}:{line}: parallel lambda")
        return 0

    all_findings: list[Finding] = []
    for path in files:
        all_findings.extend(scan_file(path))

    for f in all_findings:
        if f.kind == "ofstream":
            print(
                f"{f.path}:{f.line}: raw std::ofstream — durable output "
                f"must go through guard::atomic_write_file so a crash "
                f"cannot leave a truncated file\n"
                f"    {f.snippet}\n"
                f"    (annotate with '// {ALLOW_OFSTREAM} -- <why>' if "
                f"intentional)"
            )
        elif f.kind == "region":
            print(
                f"{f.path}:{f.line}: prof::Region constructed inside a "
                f"parallel lambda — per-iteration region overhead distorts "
                f"the profile; hoist it around the dispatch\n"
                f"    {f.snippet}\n"
                f"    (annotate with '// {ALLOW_REGION} -- <why>' if "
                f"intentional)"
            )
        else:
            print(
                f"{f.path}:{f.line}: plain indexed write to '{f.array}', "
                f"which is also passed to atomic_* in the same parallel "
                f"lambda\n"
                f"    {f.snippet}\n"
                f"    (annotate with '// {ALLOW} -- <why>' if intentional)"
            )
    n = len(all_findings)
    scanned = len(files)
    if n:
        print(f"mgc_lint: {n} finding{'s' if n != 1 else ''} in {scanned} files")
        return 1
    print(f"mgc_lint: clean ({scanned} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
