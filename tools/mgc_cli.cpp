// mgc — command-line driver for the multilevel graph coarsening library.
//
// Subcommands:
//   stats     <graph>                      print size / degree statistics
//   coarsen   <graph> [options]            print the multilevel hierarchy
//   bisect    <graph> [options]            2-way partition (FM or spectral)
//   kway      <graph> -k <parts> [options] k-way partition
//   cluster   <graph> [options]            multilevel modularity clustering
//   fiedler   <graph> [options]            multilevel Fiedler vector
//   convert   <graph> -o <out.mtx>         preprocess + write Matrix Market
//   checkpoint-info <dir>                  inspect a --checkpoint-dir
//
// <graph> is either a Matrix Market file path or a generator spec:
//   gen:grid2d:NX,NY          gen:grid3d:NX,NY,NZ     gen:rgg:N,RADIUS
//   gen:tri:NX,NY             gen:rmat:SCALE,EDGEF    gen:chunglu:N,DEG,GAMMA
//   gen:road:NX,NY,DROP       gen:kmer:N,FRAC         gen:mycielskian:K
//   gen:star:N                gen:path:N              gen:complete:N
//   gen:cycle:N               gen:er:N,DEG
//
// Common options:
//   --mapping hec|hec2|hec3|hem|mtmetis|gosh|goshhec|mis2|suitor|bsuitor
//   --construct sort|hash|heap|hybrid|spgemm|globalsort
//   --backend serial|threads       --seed S
//   --cutoff C                     --refine fm|spectral (bisect)
//   --part-out FILE                write per-vertex part/cluster ids
//   --profile FILE.json            write an mgc-profile JSON report (see
//                                  docs/profiling.md for the schema)
//   --trace FILE.json              write a Chrome trace-event JSON timeline
//                                  (chrome://tracing / Perfetto; see
//                                  docs/tracing.md); composable with
//                                  --profile in the same run
//   --deadline-ms N                wall-clock deadline for the whole run;
//                                  stalled runs stop with exit code 5
//   --fallbacks m1,m2,...          mapping fallback chain tried when the
//                                  primary mapping stalls on a level
//   --fault kind:rate:seed[,...]   deterministic fault injection (same
//                                  grammar as MGC_FAULT; docs/robustness.md)
//   --mem-budget BYTES             memory budget for tracked allocations
//                                  (accepts K/M/G suffixes, e.g. 512M);
//                                  overrides MGC_MEM_BUDGET; exhaustion
//                                  stops with exit code 4 and a valid
//                                  partial hierarchy (docs/robustness.md)
//   --checkpoint-dir DIR           write one durable snapshot per completed
//                                  coarsening level and resume from the
//                                  deepest valid prefix on restart
//   --degrade off|spill|shard|auto out-of-core degradation ladder under
//                                  memory pressure (docs/out-of-core.md):
//                                  spill finished levels to --spill-dir,
//                                  shard construction, or (auto) both plus
//                                  a last-resort overcommit — degraded,
//                                  never dead
//   --spill-dir DIR                scratch directory for ooc spill
//                                  segments (required by spill/auto)
//   --max-shards K                 shard cap for the ooc shard rung
//
// checkpoint-info also understands --spill-dir layouts: it lists
// spill_level_NNNN.mgck segments with their CRC validation status, and
// reports which hierarchy levels were resident vs spilled.
//
// Flags accept both "--flag value" and "--flag=value" forms.
//
// Exit codes (docs/robustness.md): 0 success (including degraded runs),
// 2 usage error, 3 invalid input, 4 resource exhausted, 5 deadline
// exceeded, 6 cancelled, 7 internal error. No input — however hostile —
// may escape as an uncaught exception. A --profile/--trace output file
// that cannot be written is an InvalidInput failure (exit 3), not a
// silent success.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "mgc.hpp"

namespace {

using namespace mgc;

constexpr int kExitUsage = 2;

/// Usage errors (bad flags, unknown subcommands) — distinct from input
/// errors, which surface as guard::Error and map through guard::exit_code.
[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "mgc: %s\n", msg.c_str());
  std::exit(kExitUsage);
}

struct Args {
  std::string command;
  std::string graph;
  std::map<std::string, std::string> flags;

  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : it->second;
  }
  long long get_int(const std::string& key, long long dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : std::atoll(it->second.c_str());
  }
};

Args parse_args(int argc, char** argv) {
  Args a;
  if (argc < 3) {
    die("usage: mgc <stats|coarsen|bisect|kway|cluster|fiedler|convert"
        "|checkpoint-info> <graph-or-dir> [--flag value ...]");
  }
  a.command = argv[1];
  a.graph = argv[2];
  for (int i = 3; i < argc;) {
    if (std::strncmp(argv[i], "--", 2) != 0) die("bad flag: " +
                                                 std::string(argv[i]));
    const std::string flag = argv[i] + 2;
    const std::size_t eq = flag.find('=');
    if (eq != std::string::npos) {
      a.flags[flag.substr(0, eq)] = flag.substr(eq + 1);
      i += 1;
    } else {
      if (i + 1 >= argc) die("flag needs a value: --" + flag);
      a.flags[flag] = argv[i + 1];
      i += 2;
    }
  }
  return a;
}

Mapping parse_mapping(const std::string& s) {
  if (s == "hec") return Mapping::kHec;
  if (s == "hec2") return Mapping::kHec2;
  if (s == "hec3") return Mapping::kHec3;
  if (s == "hem") return Mapping::kHem;
  if (s == "mtmetis") return Mapping::kMtMetis;
  if (s == "gosh") return Mapping::kGosh;
  if (s == "goshhec") return Mapping::kGoshHec;
  if (s == "mis2") return Mapping::kMis2;
  if (s == "suitor") return Mapping::kSuitor;
  if (s == "bsuitor") return Mapping::kBSuitor;
  if (s == "hec-serial") return Mapping::kHecSerial;
  if (s == "hem-serial") return Mapping::kHemSerial;
  die("unknown mapping: " + s);
}

Construction parse_construction(const std::string& s) {
  if (s == "sort") return Construction::kSort;
  if (s == "hash") return Construction::kHash;
  if (s == "heap") return Construction::kHeap;
  if (s == "hybrid") return Construction::kHybrid;
  if (s == "spgemm") return Construction::kSpgemm;
  if (s == "globalsort") return Construction::kGlobalSort;
  die("unknown construction: " + s);
}

void write_assignment(const std::string& path, const std::vector<int>& a) {
  if (path.empty()) return;
  // Durable write: temp + fsync + rename, so downstream consumers never
  // read a half-written assignment file. Failure maps to exit 3 through
  // main()'s error boundary.
  std::string body;
  body.reserve(a.size() * 4);
  for (const int x : a) {
    body += std::to_string(x);
    body += '\n';
  }
  const guard::Status st = guard::atomic_write_file(path, body);
  if (!st.ok()) throw guard::Error(st);
  std::printf("wrote %zu assignments to %s\n", a.size(), path.c_str());
}

void print_events(const std::vector<guard::Event>& events) {
  for (const guard::Event& e : events) {
    std::printf("degraded [%s]: %s\n", e.stage.c_str(), e.detail.c_str());
  }
}

// Flushes the --profile / --trace reports. run() flushes explicitly so a
// write failure can surface through the exit-code contract; the
// destructor is a backstop that still writes (logging only) when run()
// unwinds through an exception.
struct OutputWriter {
  std::string profile_path;
  std::string trace_path;
  bool flushed = false;

  guard::Status flush() {
    flushed = true;
    guard::Status result;
    if (!profile_path.empty()) {
      const guard::Status st = prof::write_json_file(profile_path);
      if (st.ok()) {
        std::printf("wrote profile to %s\n", profile_path.c_str());
      } else {
        std::fprintf(stderr, "mgc: %s\n", st.message.c_str());
        result = st;
      }
    }
    if (!trace_path.empty()) {
      const guard::Status st = trace::write_chrome_json_file(trace_path);
      if (st.ok()) {
        std::printf("wrote trace to %s\n", trace_path.c_str());
      } else {
        std::fprintf(stderr, "mgc: %s\n", st.message.c_str());
        if (result.ok()) result = st;
      }
    }
    return result;
  }

  ~OutputWriter() {
    if (!flushed) (void)flush();
  }
};

// The per-subcommand work, split from run() so the latter can flush
// the --profile/--trace outputs and fold a write failure into the
// exit code on every path.
int run_command(const Args& args, const Exec& exec, const Csr& g,
                const CoarsenOptions& copts) {
  if (args.command == "stats") {
    // Degree histogram (log2 buckets).
    std::map<int, vid_t> hist;
    for (vid_t u = 0; u < g.num_vertices(); ++u) {
      int bucket = 0;
      eid_t d = g.degree(u);
      while (d > 1) {
        d >>= 1;
        ++bucket;
      }
      ++hist[bucket];
    }
    std::printf("\ndegree histogram (log2 buckets):\n");
    for (const auto& [b, count] : hist) {
      std::printf("  [%6d, %6d): %8d\n", 1 << b, 1 << (b + 1), count);
    }
    return 0;
  }

  if (args.command == "coarsen") {
    const CoarsenReport r = coarsen_multilevel_guarded(exec, g, copts);
    const Hierarchy& h = r.hierarchy;
    std::printf("\n%-6s %10s %12s %10s %10s\n", "level", "n", "m",
                "map(ms)", "cons(ms)");
    for (int i = 0; i < h.num_levels(); ++i) {
      const LevelInfo& l = h.levels[static_cast<std::size_t>(i)];
      std::printf("%-6d %10d %12lld %10.2f %10.2f\n", i, l.n,
                  static_cast<long long>(l.m), l.mapping_seconds * 1e3,
                  l.construct_seconds * 1e3);
    }
    std::printf("\nlevels=%d avg_coarsening_ratio=%.2f total=%.3fs\n",
                h.num_levels(), h.avg_coarsening_ratio(),
                h.total_seconds());
    print_events(r.events);
    if (!r.status.ok()) {
      std::printf("status: %s\n", r.status.to_string().c_str());
    }
    // A stopped run still printed its partial hierarchy above; the exit
    // code reports why it stopped.
    if (!r.status.usable()) return guard::exit_code(r.status.code);
    return 0;
  }

  if (args.command == "bisect") {
    const std::string refine = args.get("refine", "fm");
    PartitionResult r;
    if (refine == "spectral") {
      BisectReport br = guarded_spectral_bisect(exec, g, copts);
      print_events(br.events);
      if (!br.status.ok()) {
        std::printf("status: %s\n", br.status.to_string().c_str());
      }
      if (!br.status.usable()) return guard::exit_code(br.status.code);
      r = std::move(br.result);
    } else if (refine == "fm") {
      r = multilevel_fm_bisect(exec, g, copts);
    } else {
      die("unknown refine: " + refine);
    }
    std::printf("\ncut=%lld imbalance=%.4f levels=%d coarsen=%.3fs "
                "refine=%.3fs\n",
                static_cast<long long>(r.cut), imbalance(g, r.part),
                r.levels, r.coarsen_seconds, r.refine_seconds);
    write_assignment(args.get("part-out", ""), r.part);
    return 0;
  }

  if (args.command == "kway") {
    KwayOptions kopts;
    kopts.k = static_cast<int>(args.get_int("k", 4));
    kopts.coarsen = copts;
    const KwayResult r = multilevel_kway(exec, g, kopts);
    std::printf("\nk=%d cut=%lld imbalance=%.4f time=%.3fs\n", kopts.k,
                static_cast<long long>(r.cut),
                kway_imbalance(g, r.part, kopts.k), r.seconds);
    write_assignment(args.get("part-out", ""), r.part);
    return 0;
  }

  if (args.command == "cluster") {
    ClusterOptions clopts;
    clopts.coarsen = copts;
    clopts.resolution = std::atof(args.get("resolution", "1.0").c_str());
    const ClusterResult r = multilevel_cluster(exec, g, clopts);
    std::printf("\nclusters=%d modularity=%.4f levels=%d\n",
                r.num_clusters, r.modularity, r.levels);
    write_assignment(args.get("part-out", ""), r.cluster);
    return 0;
  }

  if (args.command == "fiedler") {
    const FiedlerResult r = multilevel_fiedler(exec, g, copts);
    double fmin = 1e300, fmax = -1e300;
    for (const double x : r.vector) {
      fmin = std::min(fmin, x);
      fmax = std::max(fmax, x);
    }
    std::printf("\nlevels=%d iterations=%d coarsen=%.3fs solve=%.3fs "
                "range=[%.4g, %.4g]\n",
                r.levels, r.total_iterations, r.coarsen_seconds,
                r.solve_seconds, fmin, fmax);
    return 0;
  }

  if (args.command == "convert") {
    const std::string out = args.get("o", args.get("out", ""));
    if (out.empty()) die("convert needs -o / --out <path>");
    write_matrix_market_file(out, g);
    std::printf("wrote %s\n", out.c_str());
    return 0;
  }

  die("unknown command: " + args.command);
}

// `mgc checkpoint-info <dir>`: offline inspection of a --checkpoint-dir
// or an ooc --spill-dir (both hold .mgck files; the naming scheme tells
// them apart). Purely informational (exit 0); a missing directory is an
// input error.
int run_checkpoint_info(const std::string& dir) {
  if (!std::filesystem::exists(dir)) {
    throw guard::Error(
        guard::Status::invalid_input("checkpoint-info: no such directory: " +
                                     dir));
  }
  const std::vector<CheckpointFileInfo> infos = inspect_checkpoint_dir(dir);
  const std::vector<ooc::SpillSegmentInfo> segs = ooc::inspect_spill_dir(dir);
  if (infos.empty() && segs.empty()) {
    std::printf(
        "%s: no level-1 snapshot and no spill segments (nothing to "
        "resume)\n",
        dir.c_str());
    return 0;
  }
  if (!infos.empty()) {
    std::printf("%-6s %-8s %10s %12s %12s %-6s %s\n", "level", "version",
                "n", "entries", "bytes", "valid", "detail");
    int resumable = 0;
    bool prefix_ok = true;
    for (const CheckpointFileInfo& f : infos) {
      std::printf("%-6d %-8u %10d %12lld %12zu %-6s %s\n", f.level,
                  f.version, f.n, static_cast<long long>(f.entries),
                  f.file_bytes, f.valid ? "yes" : "NO",
                  f.valid ? "" : f.error.c_str());
      if (prefix_ok && f.valid) {
        ++resumable;
      } else {
        prefix_ok = false;
      }
    }
    std::printf("\nresumable prefix: %d level(s)\n", resumable);
  }
  if (!segs.empty()) {
    // Spill segments are keyed by hierarchy GRAPH INDEX; an index with no
    // segment was resident when the run ended (gaps are normal).
    std::printf("\nspill segments (graph index -> on-disk level):\n");
    std::printf("%-6s %10s %12s %12s %12s %-6s %s\n", "index", "n",
                "entries", "map_n", "bytes", "valid", "detail");
    std::size_t total_bytes = 0;
    int next = 0;
    std::string resident;
    for (const ooc::SpillSegmentInfo& s : segs) {
      for (; next < s.index; ++next) {
        resident += (resident.empty() ? "" : ",") + std::to_string(next);
      }
      next = s.index + 1;
      std::printf("%-6d %10d %12lld %12zu %12zu %-6s %s\n", s.index, s.n,
                  static_cast<long long>(s.entries), s.map_n, s.file_bytes,
                  s.valid ? "yes" : "NO", s.valid ? "" : s.error.c_str());
      total_bytes += s.file_bytes;
    }
    std::printf("\nspilled: %zu segment(s), %zu bytes on disk\n",
                segs.size(), total_bytes);
    std::printf("resident when the run ended: %s\n",
                resident.empty() ? "(none below the highest segment)"
                                 : resident.c_str());
  }
  return 0;
}

int run(const Args& args) {
  if (args.command == "checkpoint-info") {
    return run_checkpoint_info(args.graph);
  }
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string backend = args.get("backend", "threads");
  const Exec exec = backend == "serial" ? Exec::serial() : Exec::threads();

  // Fault injection: --fault overrides MGC_FAULT for this process.
  const std::string fault_spec = args.get("fault", "");
  if (!fault_spec.empty()) {
    const guard::Status fs = guard::fault::configure(fault_spec);
    if (!fs.ok()) throw guard::Error(fs);
  }

  // Deadline: covers everything from graph load to output. Kernels and
  // level boundaries poll the installed context (guard::ScopedCtx).
  guard::Ctx gctx;
  const long long deadline_ms = args.get_int("deadline-ms", 0);
  if (deadline_ms > 0) {
    gctx.deadline = guard::Deadline::after_ms(
        static_cast<double>(deadline_ms));
  }
  // Memory budget: --mem-budget (byte count, K/M/G suffixes) overrides the
  // MGC_MEM_BUDGET env var for everything under this context. A garbage
  // value throws the typed kInvalidInput from parse_bytes (exit 3).
  const std::string mem_budget = args.get("mem-budget", "");
  if (!mem_budget.empty()) {
    gctx.mem_budget_bytes = guard::parse_bytes(mem_budget).value();
  }
  guard::ScopedCtx scoped_ctx(gctx);

  OutputWriter outputs;
  outputs.profile_path = args.get("profile", "");
  outputs.trace_path = args.get("trace", "");
  if (!outputs.trace_path.empty()) {
    trace::enable();
  }
  if (!outputs.profile_path.empty() || !outputs.trace_path.empty()) {
    // prof feeds the trace's region events, so --trace implies prof too.
    prof::enable();
    prof::set_meta("tool", "mgc_cli");
    prof::set_meta("command", args.command);
    prof::set_meta("graph", args.graph);
    prof::set_meta("backend", backend);
    prof::set_meta("seed", static_cast<long long>(seed));
    prof::set_meta("threads",
                   static_cast<long long>(exec.concurrency()));
  }
  if (!is_generator_spec(args.graph)) {
    std::printf("loading %s ...\n", args.graph.c_str());
  }
  const Csr g = load_graph_spec(args.graph, seed);
  prof::set_meta("n", static_cast<long long>(g.num_vertices()));
  prof::set_meta("m", static_cast<long long>(g.num_edges()));
  std::printf("graph: n=%d m=%lld avg_deg=%.2f skew=%.1f\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              g.num_vertices() > 0
                  ? static_cast<double>(g.num_entries()) / g.num_vertices()
                  : 0.0,
              g.degree_skew());

  CoarsenOptions copts;
  copts.mapping = parse_mapping(args.get("mapping", "hec"));
  copts.construct.method =
      parse_construction(args.get("construct", "sort"));
  copts.cutoff = static_cast<vid_t>(args.get_int("cutoff", 50));
  copts.seed = seed;
  copts.checkpoint_dir = args.get("checkpoint-dir", "");
  // Out-of-core ladder: a bad mode string or a missing spill dir surfaces
  // as the typed kInvalidInput (exit 3) before any work happens.
  copts.degrade = parse_degrade(args.get("degrade", "off")).value();
  copts.spill_dir = args.get("spill-dir", "");
  copts.max_shards = static_cast<int>(args.get_int("max-shards", 8));
  if ((copts.degrade == Degrade::kSpill ||
       copts.degrade == Degrade::kAuto) &&
      copts.spill_dir.empty()) {
    throw guard::Error(guard::Status::invalid_input(
        "--degrade " + degrade_name(copts.degrade) +
        " requires --spill-dir"));
  }
  const std::string fallbacks = args.get("fallbacks", "");
  for (std::size_t pos = 0; pos < fallbacks.size();) {
    std::size_t comma = fallbacks.find(',', pos);
    if (comma == std::string::npos) comma = fallbacks.size();
    if (comma > pos) {
      copts.fallback_mappings.push_back(
          parse_mapping(fallbacks.substr(pos, comma - pos)));
    }
    pos = comma + 1;
  }

  const int rc = run_command(args, exec, g, copts);
  // With a budget active, report the tracked peak so operators (and the
  // CI crash-recovery job) can pick budget windows empirically.
  const std::size_t active_budget =
      gctx.mem_budget_bytes != 0 ? gctx.mem_budget_bytes
                                 : guard::MemoryBudget::process().limit();
  if (active_budget != 0) {
    std::printf("mem: peak=%zu budget=%zu\n",
                guard::MemoryBudget::process().peak(), active_budget);
  }
#if defined(__unix__) || defined(__APPLE__)
  // OS-truth peak RSS, so the CI ooc-pressure job can assert that the
  // degrade ladder actually bounded physical memory (the ledger above only
  // tracks charged allocations).
  {
    struct rusage ru {};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
      std::printf("rss: peak_kb=%ld\n", static_cast<long>(ru.ru_maxrss));
    }
  }
#endif
  // An unwritable report file must not masquerade as success: surface
  // the IO failure through the exit-code contract (InvalidInput -> 3).
  const guard::Status write_status = outputs.flush();
  if (!write_status.ok() && rc == 0) {
    return guard::exit_code(write_status.code);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // Top-level error boundary: every failure maps to a documented exit
  // code and a one-line diagnostic — no input may terminate the process
  // via an uncaught exception (docs/robustness.md).
  try {
    return run(parse_args(argc, argv));
  } catch (const mgc::guard::Error& e) {
    std::fprintf(stderr, "mgc: error (%s): %s\n",
                 mgc::guard::code_name(e.code()), e.what());
    return mgc::guard::exit_code(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mgc: error (internal): %s\n", e.what());
    return mgc::guard::exit_code(mgc::guard::Code::kInternal);
  } catch (...) {
    std::fprintf(stderr, "mgc: error (internal): unknown exception\n");
    return mgc::guard::exit_code(mgc::guard::Code::kInternal);
  }
}
