#!/usr/bin/env python3
"""Compare two mgc-profile v1 JSON reports and gate on regressions.

Usage:
    mgc_profcmp.py BASELINE.json CANDIDATE.json [options]

Flattens each report's region tree into slash-joined paths
(``coarsen/level:1/construct``), computes per-path inclusive seconds,
derived exclusive seconds (inclusive minus the sum of the children's
inclusive), and per-counter totals, then prints a comparison table and
fails when any row regresses past the threshold.

A row is a REGRESSION when the candidate's inclusive time exceeds the
baseline's by more than --fail-threshold-pct percent AND the absolute
growth exceeds --abs-floor-ms milliseconds (the floor keeps sub-
millisecond noise from failing CI). Counters use the same percentage
threshold with an absolute floor of --counter-floor events.

Exit codes:
    0  no regression (a self-compare is always clean)
    1  at least one regression past the threshold
    2  usage error, unreadable input, or schema mismatch

Used by the CI perf-smoke job (.github/workflows/ci.yml) and for
refreshing the BENCH_*.json trajectory points; see docs/profiling.md.
"""

import argparse
import json
import sys

SCHEMA_NAME = "mgc-profile"
SCHEMA_VERSION = 1


def fail_usage(msg):
    print(f"mgc_profcmp: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load_profile(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail_usage(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail_usage(f"{path} is not valid JSON: {e}")
    if doc.get("schema") != SCHEMA_NAME:
        fail_usage(f"{path}: schema is {doc.get('schema')!r}, "
                   f"expected {SCHEMA_NAME!r}")
    if doc.get("version") != SCHEMA_VERSION:
        fail_usage(f"{path}: schema version {doc.get('version')!r}, "
                   f"this tool understands version {SCHEMA_VERSION}")
    return doc


def flatten_regions(regions, prefix=""):
    """Region forest -> {path: {"seconds", "exclusive", "count"}}.

    Same-named siblings (rare, but the schema allows them) merge into one
    row, matching how prof itself accumulates repeated region entries.
    """
    table = {}

    def visit(region, prefix):
        path = prefix + region.get("name", "?")
        children = region.get("children", [])
        seconds = float(region.get("seconds", 0.0))
        child_seconds = sum(float(c.get("seconds", 0.0)) for c in children)
        row = table.setdefault(path,
                               {"seconds": 0.0, "exclusive": 0.0,
                                "count": 0})
        row["seconds"] += seconds
        # Clamp: children measured on other threads can overlap the parent.
        row["exclusive"] += max(0.0, seconds - child_seconds)
        row["count"] += int(region.get("count", 0))
        for child in children:
            visit(child, path + "/")

    for region in regions:
        visit(region, prefix)
    return table


def pct_delta(base, cand):
    if base <= 0.0:
        return float("inf") if cand > 0.0 else 0.0
    return (cand - base) / base * 100.0


def fmt_pct(p):
    if p == float("inf"):
        return "   new"
    return f"{p:+6.1f}%"


def main():
    ap = argparse.ArgumentParser(
        prog="mgc_profcmp.py",
        description="Diff two mgc-profile v1 JSON reports and fail on "
                    "regressions.")
    ap.add_argument("baseline", help="baseline profile JSON")
    ap.add_argument("candidate", help="candidate profile JSON")
    ap.add_argument("--fail-threshold-pct", type=float, default=25.0,
                    help="fail when a region's inclusive time (or a "
                         "counter) grows more than this percentage "
                         "(default: %(default)s)")
    ap.add_argument("--abs-floor-ms", type=float, default=5.0,
                    help="ignore region growth smaller than this many "
                         "milliseconds regardless of percentage "
                         "(default: %(default)s)")
    ap.add_argument("--counter-floor", type=int, default=1000,
                    help="ignore counter growth smaller than this many "
                         "events (default: %(default)s)")
    ap.add_argument("--top", type=int, default=30,
                    help="print at most this many region rows, largest "
                         "candidate time first; 0 = all "
                         "(default: %(default)s)")
    ap.add_argument("--no-counters", action="store_true",
                    help="compare regions only")
    args = ap.parse_args()

    base_doc = load_profile(args.baseline)
    cand_doc = load_profile(args.candidate)
    base = flatten_regions(base_doc.get("regions", []))
    cand = flatten_regions(cand_doc.get("regions", []))

    regressions = []

    rows = []
    for path in sorted(set(base) | set(cand)):
        b = base.get(path, {"seconds": 0.0, "exclusive": 0.0, "count": 0})
        c = cand.get(path, {"seconds": 0.0, "exclusive": 0.0, "count": 0})
        delta = pct_delta(b["seconds"], c["seconds"])
        grew_ms = (c["seconds"] - b["seconds"]) * 1000.0
        regressed = (delta > args.fail_threshold_pct
                     and grew_ms > args.abs_floor_ms)
        if regressed:
            regressions.append(
                f"region {path}: {b['seconds']*1000:.2f}ms -> "
                f"{c['seconds']*1000:.2f}ms ({fmt_pct(delta).strip()})")
        rows.append((path, b, c, delta, regressed))

    rows.sort(key=lambda r: r[2]["seconds"], reverse=True)
    shown = rows if args.top == 0 else rows[:args.top]

    print(f"{'region':<44} {'base ms':>10} {'cand ms':>10} "
          f"{'excl ms':>10} {'delta':>8}")
    for path, b, c, delta, regressed in shown:
        flag = "  << REGRESSION" if regressed else ""
        name = path if len(path) <= 44 else "..." + path[-41:]
        print(f"{name:<44} {b['seconds']*1000:>10.2f} "
              f"{c['seconds']*1000:>10.2f} {c['exclusive']*1000:>10.2f} "
              f"{fmt_pct(delta):>8}{flag}")
    if len(rows) > len(shown):
        print(f"... {len(rows) - len(shown)} more region rows "
              f"(--top 0 shows all)")

    if not args.no_counters:
        base_counters = base_doc.get("counters", {})
        cand_counters = cand_doc.get("counters", {})
        changed = []
        for name in sorted(set(base_counters) | set(cand_counters)):
            b = int(base_counters.get(name, 0))
            c = int(cand_counters.get(name, 0))
            if b == c:
                continue
            delta = pct_delta(b, c)
            regressed = (delta > args.fail_threshold_pct
                         and c - b > args.counter_floor)
            if regressed:
                regressions.append(
                    f"counter {name}: {b} -> {c} "
                    f"({fmt_pct(delta).strip()})")
            changed.append((name, b, c, delta, regressed))
        if changed:
            print()
            print(f"{'counter':<44} {'base':>12} {'cand':>12} {'delta':>8}")
            for name, b, c, delta, regressed in changed:
                flag = "  << REGRESSION" if regressed else ""
                shown_name = name if len(name) <= 44 else "..." + name[-41:]
                print(f"{shown_name:<44} {b:>12} {c:>12} "
                      f"{fmt_pct(delta):>8}{flag}")

    print()
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s) past "
              f"{args.fail_threshold_pct:g}% "
              f"(abs floor {args.abs_floor_ms:g}ms / "
              f"{args.counter_floor} events):")
        for r in regressions:
            print(f"  {r}")
        sys.exit(1)
    print(f"OK: no regression past {args.fail_threshold_pct:g}% "
          f"(abs floor {args.abs_floor_ms:g}ms)")
    sys.exit(0)


if __name__ == "__main__":
    main()
