// mgc_serve — long-running coarsening service over a local socket.
//
// Speaks the line-delimited JSON protocol documented in docs/serving.md:
// one request object per line, one response object per line. The daemon
// keeps a HierarchyCache so a graph coarsened once serves any number of
// partition / cluster / fiedler requests (at any k / resolution) without
// re-coarsening — the paper's amortisation argument, realised as a
// process.
//
// Usage:
//   mgc_serve --socket PATH [options]
//
// Options (flags override the MGC_SERVE_* environment, which overrides
// the built-in defaults):
//   --socket PATH          AF_UNIX socket path to listen on (required)
//   --workers N            concurrent expensive requests   [MGC_SERVE_WORKERS]
//   --queue N              waiting requests before typed
//                          overload rejection               [MGC_SERVE_QUEUE]
//   --cache-budget BYTES   resident hierarchy cap, K/M/G
//                          suffixes ok (0 = uncapped) [MGC_SERVE_CACHE_BUDGET]
//   --max-request BYTES    request line cap           [MGC_SERVE_MAX_REQUEST]
//   --backend threads|serial                           [MGC_SERVE_BACKEND]
//   --deadline-ms N        default per-request deadline (0 = none)
//   --profile FILE.json    write an mgc-profile report after draining
//   --trace FILE.json      write a Chrome trace after draining
//   --metrics-file FILE.json  periodically write the live metrics snapshot
//                          (atomic rename; scrape-safe at any moment)
//   --metrics-interval-ms N   snapshot period (default 1000)
//   --flight-dir DIR       flight-recorder dumps for bad requests
//                                                [MGC_SERVE_FLIGHT_DIR]
//   --log-level L          debug|info|warn|error        [MGC_LOG_LEVEL]
//   --no-telemetry         disable metrics/flight collection
//                                                [MGC_SERVE_TELEMETRY=0]
//
// Runtime narrative goes to stderr as structured JSON lines (mgc::obs::log,
// docs/observability.md); the only raw stderr left is usage() and the
// top-level error boundary, which must work before logging is configured.
//
// Shutdown: SIGTERM / SIGINT or a {"op":"shutdown"} request DRAIN the
// daemon — in-flight requests finish and get replies, the socket file is
// unlinked, profile/trace/metrics files are flushed, exit code 0. Exit
// codes follow the library-wide contract in docs/robustness.md.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "guard/env.hpp"
#include "guard/status.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "prof/prof.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "trace/trace.hpp"

namespace {

using namespace mgc;

[[noreturn]] void usage(const char* msg) {
  // Usage text predates any logging configuration and is for humans.
  // mgc-lint: stderr-ok -- usage text, printed before logging is configured
  if (msg != nullptr) std::fprintf(stderr, "mgc_serve: %s\n", msg);
  // mgc-lint: stderr-ok -- usage text, printed before logging is configured
  std::fprintf(stderr,
               "usage: mgc_serve --socket PATH [--workers N] [--queue N]\n"
               "                 [--cache-budget BYTES] [--max-request "
               "BYTES]\n"
               "                 [--backend threads|serial] [--deadline-ms "
               "N]\n"
               "                 [--profile FILE.json] [--trace FILE.json]\n"
               "                 [--metrics-file FILE.json] "
               "[--metrics-interval-ms N]\n"
               "                 [--flight-dir DIR] [--log-level L] "
               "[--no-telemetry]\n"
               "see docs/serving.md and docs/observability.md\n");
  std::exit(2);
}

int run(int argc, char** argv) {
  std::string socket_path;
  std::string profile_path;
  std::string trace_path;
  std::string metrics_path;
  int metrics_interval_ms = 1000;

  serve::ServiceOptions opts = serve::ServiceOptions::from_env().value();

  // Validate MGC_LOG_LEVEL loudly here: the logger itself falls back to
  // info on garbage (it cannot fail mid-run), but a daemon started with a
  // typo'd level must not silently run at the wrong verbosity.
  if (const std::string env_level = guard::env_str("MGC_LOG_LEVEL");
      !env_level.empty()) {
    obs::log::set_level(obs::log::parse_level(env_level).value());
  }

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string value;
    const std::size_t eq = flag.find('=');
    bool have_value = false;
    if (eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      have_value = true;
    }
    auto need_value = [&]() -> const std::string& {
      if (have_value) return value;
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      value = argv[++i];
      return value;
    };
    if (flag == "--socket") {
      socket_path = need_value();
    } else if (flag == "--workers") {
      opts.workers = std::max(1, std::atoi(need_value().c_str()));
    } else if (flag == "--queue") {
      opts.queue_limit = std::max(0, std::atoi(need_value().c_str()));
    } else if (flag == "--cache-budget") {
      opts.cache_budget_bytes = guard::parse_bytes(need_value()).value();
    } else if (flag == "--max-request") {
      opts.max_request_bytes =
          std::max<std::size_t>(256, guard::parse_bytes(need_value()).value());
    } else if (flag == "--backend") {
      opts.backend = need_value();
      if (opts.backend != "threads" && opts.backend != "serial") {
        usage("--backend must be threads or serial");
      }
    } else if (flag == "--deadline-ms") {
      opts.default_deadline_ms = std::atof(need_value().c_str());
    } else if (flag == "--profile") {
      profile_path = need_value();
    } else if (flag == "--trace") {
      trace_path = need_value();
    } else if (flag == "--metrics-file") {
      metrics_path = need_value();
    } else if (flag == "--metrics-interval-ms") {
      metrics_interval_ms = std::max(10, std::atoi(need_value().c_str()));
    } else if (flag == "--flight-dir") {
      opts.flight_dir = need_value();
    } else if (flag == "--log-level") {
      const auto l = obs::log::parse_level(need_value());
      if (!l.ok()) usage(l.status().message.c_str());
      obs::log::set_level(l.value());
    } else if (flag == "--no-telemetry") {
      if (have_value) usage("--no-telemetry takes no value");
      opts.telemetry = false;
    } else if (flag == "--help" || flag == "-h") {
      usage(nullptr);
    } else {
      usage(("unknown flag: " + flag).c_str());
    }
  }
  if (socket_path.empty()) usage("--socket PATH is required");

  if (!trace_path.empty()) trace::enable();
  if (!profile_path.empty() || !trace_path.empty()) {
    prof::enable();  // prof feeds the trace's region events
  }

  serve::install_drain_handlers();
  serve::Service service(opts);
  serve::Server server(service, socket_path);

  obs::log::emit(obs::log::Level::kInfo, "serve.start",
                 {obs::log::kv("socket", socket_path),
                  obs::log::kv("workers", opts.workers),
                  obs::log::kv("queue", opts.queue_limit),
                  obs::log::kv("cache_budget", opts.cache_budget_bytes),
                  obs::log::kv("backend", opts.backend),
                  obs::log::kv("telemetry", opts.telemetry)});

  // Periodic metrics snapshots: each write is temp+fsync+rename, so a
  // scraper reading the file never sees a half-written document. The
  // final write after the drain makes the file cover the whole run.
  std::atomic<bool> metrics_stop{false};
  std::thread metrics_writer;
  if (!metrics_path.empty()) {
    metrics_writer = std::thread([&metrics_stop, &metrics_path,
                                  metrics_interval_ms] {
      while (!metrics_stop.load(std::memory_order_relaxed)) {
        const guard::Status ws = obs::metrics::write_json_file(metrics_path);
        if (!ws.ok()) {
          obs::log::emit(obs::log::Level::kWarn, "serve.metrics_write_failed",
                         {obs::log::kv("path", metrics_path),
                          obs::log::kv("message", ws.message)});
        }
        // Sleep in short slices so the drain is not held up by a long
        // snapshot interval.
        for (int slept = 0;
             slept < metrics_interval_ms &&
             !metrics_stop.load(std::memory_order_relaxed);
             slept += 50) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
    });
  }

  const guard::Status st = server.run();

  metrics_stop.store(true, std::memory_order_relaxed);
  if (metrics_writer.joinable()) metrics_writer.join();
  if (!metrics_path.empty()) {
    const guard::Status ws = obs::metrics::write_json_file(metrics_path);
    if (!ws.ok()) throw guard::Error(ws);
  }

  if (!st.ok()) {
    obs::log::emit(obs::log::Level::kError, "serve.failed",
                   {obs::log::kv("code", guard::code_name(st.code)),
                    obs::log::kv("message", st.message)});
    return guard::exit_code(st.code);
  }

  const serve::HierarchyCache::Stats cs = service.cache_stats();
  obs::log::emit(obs::log::Level::kInfo, "serve.stopped",
                 {obs::log::kv("requests", service.requests_handled()),
                  obs::log::kv("cache_hits", cs.hits),
                  obs::log::kv("cache_misses", cs.misses),
                  obs::log::kv("cache_evictions", cs.evictions)});

  // Flush observability output last so it covers the whole run. A report
  // that cannot be written is a real failure (exit 3), not a silent one.
  if (!profile_path.empty()) {
    prof::set_meta("tool", std::string("mgc_serve"));
    prof::set_meta("requests",
                   static_cast<long long>(service.requests_handled()));
    prof::set_meta("cache_hits", static_cast<long long>(cs.hits));
    prof::set_meta("cache_misses", static_cast<long long>(cs.misses));
    const guard::Status ps = prof::write_json_file(profile_path);
    if (!ps.ok()) throw guard::Error(ps);
    obs::log::emit(obs::log::Level::kInfo, "serve.profile_written",
                   {obs::log::kv("path", profile_path)});
  }
  if (!trace_path.empty()) {
    const guard::Status ts = trace::write_chrome_json_file(trace_path);
    if (!ts.ok()) throw guard::Error(ts);
    obs::log::emit(obs::log::Level::kInfo, "serve.trace_written",
                   {obs::log::kv("path", trace_path)});
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Same top-level error boundary as the one-shot CLI: every failure maps
  // to a documented exit code (docs/robustness.md).
  try {
    return run(argc, argv);
  } catch (const mgc::guard::Error& e) {
    // The boundary of last resort: it must work even when the failure IS
    // the logging/telemetry configuration.
    // mgc-lint: stderr-ok -- last-resort error boundary, may predate logging
    std::fprintf(stderr, "mgc_serve: error (%s): %s\n",
                 mgc::guard::code_name(e.code()), e.what());
    return mgc::guard::exit_code(e.code());
  } catch (const std::exception& e) {
    // mgc-lint: stderr-ok -- last-resort error boundary, may predate logging
    std::fprintf(stderr, "mgc_serve: error (internal): %s\n", e.what());
    return mgc::guard::exit_code(mgc::guard::Code::kInternal);
  } catch (...) {
    // mgc-lint: stderr-ok -- last-resort error boundary, may predate logging
    std::fprintf(stderr, "mgc_serve: error (internal): unknown exception\n");
    return mgc::guard::exit_code(mgc::guard::Code::kInternal);
  }
}
