// mgc_serve — long-running coarsening service over a local socket.
//
// Speaks the line-delimited JSON protocol documented in docs/serving.md:
// one request object per line, one response object per line. The daemon
// keeps a HierarchyCache so a graph coarsened once serves any number of
// partition / cluster / fiedler requests (at any k / resolution) without
// re-coarsening — the paper's amortisation argument, realised as a
// process.
//
// By default the daemon runs SUPERVISED (docs/serving.md § Supervision):
// a small single-threaded supervisor owns the listening socket and a
// request journal, forks the worker that actually serves, respawns it
// with backed-off restarts when it crashes, quarantines requests that
// crash it twice in a row, and exits 8 on a crash loop instead of
// flapping forever. `--no-supervise` runs the worker directly in the
// foreground process (the PR-7 behaviour).
//
// Usage:
//   mgc_serve --socket PATH [options]
//
// Options (flags override the MGC_SERVE_* environment, which overrides
// the built-in defaults):
//   --socket PATH          AF_UNIX socket path to listen on (required)
//   --workers N            concurrent expensive requests   [MGC_SERVE_WORKERS]
//   --queue N              waiting requests before typed
//                          overload rejection               [MGC_SERVE_QUEUE]
//   --cache-budget BYTES   resident hierarchy cap, K/M/G
//                          suffixes ok (0 = uncapped) [MGC_SERVE_CACHE_BUDGET]
//   --max-request BYTES    request line cap           [MGC_SERVE_MAX_REQUEST]
//   --backend threads|serial                           [MGC_SERVE_BACKEND]
//   --deadline-ms N        default per-request deadline (0 = none)
//   --supervise / --no-supervise   crash-isolated worker [MGC_SERVE_SUPERVISE]
//   --force-socket         take over a LIVE daemon's socket path (a stale
//                          socket file is always cleaned up without this)
//   --max-connections N    concurrent connections before a typed
//                          overload close           [MGC_SERVE_MAX_CONNECTIONS]
//   --idle-timeout-ms N    close connections idle this long
//                          (0 = never)            [MGC_SERVE_IDLE_TIMEOUT_MS]
//   --crash-loop-limit N   crashes inside the window before the
//                          supervisor exits 8 (default 5)
//   --crash-loop-window-s S  crash-loop window seconds (default 30)
//   --backoff-ms N         respawn backoff base (default 50, cap 2000)
//   --profile FILE.json    write an mgc-profile report after draining
//   --trace FILE.json      write a Chrome trace after draining
//   --metrics-file FILE.json  periodically write the live metrics snapshot
//                          (atomic rename; scrape-safe at any moment)
//   --metrics-interval-ms N   snapshot period (default 1000)
//   --flight-dir DIR       flight-recorder dumps for bad requests
//                                                [MGC_SERVE_FLIGHT_DIR]
//   --log-level L          debug|info|warn|error        [MGC_LOG_LEVEL]
//   --no-telemetry         disable metrics/flight collection
//                                                [MGC_SERVE_TELEMETRY=0]
//
// Runtime narrative goes to stderr as structured JSON lines (mgc::obs::log,
// docs/observability.md); the only raw stderr left is usage() and the
// top-level error boundary, which must work before logging is configured.
//
// Shutdown: SIGTERM / SIGINT or a {"op":"shutdown"} request DRAIN the
// daemon — the supervisor forwards the signal to the worker, in-flight
// requests finish and get replies, the socket file is unlinked,
// profile/trace/metrics files are flushed, exit code 0. Exit codes follow
// the library-wide contract in docs/robustness.md (8 = crash loop).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "guard/env.hpp"
#include "guard/status.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "prof/prof.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/supervisor.hpp"
#include "trace/trace.hpp"

namespace {

using namespace mgc;

[[noreturn]] void usage(const char* msg) {
  // Usage text predates any logging configuration and is for humans.
  // mgc-lint: stderr-ok -- usage text, printed before logging is configured
  if (msg != nullptr) std::fprintf(stderr, "mgc_serve: %s\n", msg);
  // mgc-lint: stderr-ok -- usage text, printed before logging is configured
  std::fprintf(stderr,
               "usage: mgc_serve --socket PATH [--workers N] [--queue N]\n"
               "                 [--cache-budget BYTES] [--max-request "
               "BYTES]\n"
               "                 [--backend threads|serial] [--deadline-ms "
               "N]\n"
               "                 [--supervise|--no-supervise] "
               "[--force-socket]\n"
               "                 [--max-connections N] [--idle-timeout-ms "
               "N]\n"
               "                 [--crash-loop-limit N] "
               "[--crash-loop-window-s S] [--backoff-ms N]\n"
               "                 [--profile FILE.json] [--trace FILE.json]\n"
               "                 [--metrics-file FILE.json] "
               "[--metrics-interval-ms N]\n"
               "                 [--flight-dir DIR] [--log-level L] "
               "[--no-telemetry]\n"
               "see docs/serving.md and docs/observability.md\n");
  std::exit(2);
}

/// Everything parsed from flags + env, shared by the supervised and
/// standalone paths. The worker config (inherited fd, generation,
/// quarantine) arrives separately through the supervisor's fork.
struct DaemonConfig {
  serve::ServiceOptions opts;
  serve::ServerOptions sopts;
  serve::SupervisorOptions sup;
  std::string socket_path;
  std::string profile_path;
  std::string trace_path;
  std::string metrics_path;
  int metrics_interval_ms = 1000;
  bool supervise = true;
};

/// The daemon body: Service + Server + telemetry flushing. Runs in the
/// forked worker under supervision, or directly in the foreground process
/// with --no-supervise (then `w` is all defaults: own the socket, no
/// journal, generation 0).
int worker_run(const DaemonConfig& cfg, const serve::WorkerConfig& w) {
  serve::ServiceOptions opts = cfg.opts;
  opts.journal_path = w.journal_path;
  opts.quarantined_keys = w.quarantined_keys;
  opts.generation = w.generation;
  serve::ServerOptions sopts = cfg.sopts;
  sopts.listen_fd = w.listen_fd;

  if (!cfg.trace_path.empty()) trace::enable();
  if (!cfg.profile_path.empty() || !cfg.trace_path.empty()) {
    prof::enable();  // prof feeds the trace's region events
  }

  serve::install_drain_handlers();
  serve::Service service(opts);
  serve::Server server(service, cfg.socket_path, sopts);

  obs::log::emit(
      obs::log::Level::kInfo, "serve.start",
      {obs::log::kv("socket", cfg.socket_path),
       obs::log::kv("workers", opts.workers),
       obs::log::kv("queue", opts.queue_limit),
       obs::log::kv("cache_budget", opts.cache_budget_bytes),
       obs::log::kv("backend", opts.backend),
       obs::log::kv("telemetry", opts.telemetry),
       obs::log::kv("generation", w.generation),
       obs::log::kv("quarantined",
                    static_cast<int>(w.quarantined_keys.size()))});

  // Periodic metrics snapshots: each write is temp+fsync+rename, so a
  // scraper reading the file never sees a half-written document. The
  // final write after the drain makes the file cover the whole run.
  std::atomic<bool> metrics_stop{false};
  std::thread metrics_writer;
  if (!cfg.metrics_path.empty()) {
    metrics_writer = std::thread([&metrics_stop, &cfg] {
      while (!metrics_stop.load(std::memory_order_relaxed)) {
        const guard::Status ws =
            obs::metrics::write_json_file(cfg.metrics_path);
        if (!ws.ok()) {
          obs::log::emit(obs::log::Level::kWarn, "serve.metrics_write_failed",
                         {obs::log::kv("path", cfg.metrics_path),
                          obs::log::kv("message", ws.message)});
        }
        // Sleep in short slices so the drain is not held up by a long
        // snapshot interval.
        for (int slept = 0;
             slept < cfg.metrics_interval_ms &&
             !metrics_stop.load(std::memory_order_relaxed);
             slept += 50) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
    });
  }

  const guard::Status st = server.run();

  metrics_stop.store(true, std::memory_order_relaxed);
  if (metrics_writer.joinable()) metrics_writer.join();
  if (!cfg.metrics_path.empty()) {
    const guard::Status ws = obs::metrics::write_json_file(cfg.metrics_path);
    if (!ws.ok()) throw guard::Error(ws);
  }

  if (!st.ok()) {
    obs::log::emit(obs::log::Level::kError, "serve.failed",
                   {obs::log::kv("code", guard::code_name(st.code)),
                    obs::log::kv("message", st.message)});
    return guard::exit_code(st.code);
  }

  const serve::HierarchyCache::Stats cs = service.cache_stats();
  obs::log::emit(obs::log::Level::kInfo, "serve.stopped",
                 {obs::log::kv("requests", service.requests_handled()),
                  obs::log::kv("cache_hits", cs.hits),
                  obs::log::kv("cache_misses", cs.misses),
                  obs::log::kv("cache_evictions", cs.evictions)});

  // Flush observability output last so it covers the whole run. A report
  // that cannot be written is a real failure (exit 3), not a silent one.
  if (!cfg.profile_path.empty()) {
    prof::set_meta("tool", std::string("mgc_serve"));
    prof::set_meta("requests",
                   static_cast<long long>(service.requests_handled()));
    prof::set_meta("cache_hits", static_cast<long long>(cs.hits));
    prof::set_meta("cache_misses", static_cast<long long>(cs.misses));
    const guard::Status ps = prof::write_json_file(cfg.profile_path);
    if (!ps.ok()) throw guard::Error(ps);
    obs::log::emit(obs::log::Level::kInfo, "serve.profile_written",
                   {obs::log::kv("path", cfg.profile_path)});
  }
  if (!cfg.trace_path.empty()) {
    const guard::Status ts = trace::write_chrome_json_file(cfg.trace_path);
    if (!ts.ok()) throw guard::Error(ts);
    obs::log::emit(obs::log::Level::kInfo, "serve.trace_written",
                   {obs::log::kv("path", cfg.trace_path)});
  }
  return 0;
}

int run(int argc, char** argv) {
  DaemonConfig cfg;
  cfg.opts = serve::ServiceOptions::from_env().value();
  cfg.supervise =
      guard::env_int("MGC_SERVE_SUPERVISE", 1).value() != 0;
  cfg.sopts.max_connections = static_cast<int>(
      guard::env_int("MGC_SERVE_MAX_CONNECTIONS", 256).value());
  cfg.sopts.idle_timeout_ms = static_cast<int>(
      guard::env_int("MGC_SERVE_IDLE_TIMEOUT_MS", 0).value());

  // Validate MGC_LOG_LEVEL loudly here: the logger itself falls back to
  // info on garbage (it cannot fail mid-run), but a daemon started with a
  // typo'd level must not silently run at the wrong verbosity.
  if (const std::string env_level = guard::env_str("MGC_LOG_LEVEL");
      !env_level.empty()) {
    obs::log::set_level(obs::log::parse_level(env_level).value());
  }

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string value;
    const std::size_t eq = flag.find('=');
    bool have_value = false;
    if (eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      have_value = true;
    }
    auto need_value = [&]() -> const std::string& {
      if (have_value) return value;
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      value = argv[++i];
      return value;
    };
    auto no_value = [&]() {
      if (have_value) usage((flag + " takes no value").c_str());
    };
    if (flag == "--socket") {
      cfg.socket_path = need_value();
    } else if (flag == "--workers") {
      cfg.opts.workers = std::max(1, std::atoi(need_value().c_str()));
    } else if (flag == "--queue") {
      cfg.opts.queue_limit = std::max(0, std::atoi(need_value().c_str()));
    } else if (flag == "--cache-budget") {
      cfg.opts.cache_budget_bytes = guard::parse_bytes(need_value()).value();
    } else if (flag == "--max-request") {
      cfg.opts.max_request_bytes =
          std::max<std::size_t>(256, guard::parse_bytes(need_value()).value());
    } else if (flag == "--backend") {
      cfg.opts.backend = need_value();
      if (cfg.opts.backend != "threads" && cfg.opts.backend != "serial") {
        usage("--backend must be threads or serial");
      }
    } else if (flag == "--deadline-ms") {
      cfg.opts.default_deadline_ms = std::atof(need_value().c_str());
    } else if (flag == "--supervise") {
      no_value();
      cfg.supervise = true;
    } else if (flag == "--no-supervise") {
      no_value();
      cfg.supervise = false;
    } else if (flag == "--force-socket") {
      no_value();
      cfg.sopts.force_socket = true;
    } else if (flag == "--max-connections") {
      cfg.sopts.max_connections =
          std::max(1, std::atoi(need_value().c_str()));
    } else if (flag == "--idle-timeout-ms") {
      cfg.sopts.idle_timeout_ms =
          std::max(0, std::atoi(need_value().c_str()));
    } else if (flag == "--crash-loop-limit") {
      cfg.sup.crash_loop_limit = std::max(1, std::atoi(need_value().c_str()));
    } else if (flag == "--crash-loop-window-s") {
      cfg.sup.crash_loop_window_s =
          std::max(0.1, std::atof(need_value().c_str()));
    } else if (flag == "--backoff-ms") {
      cfg.sup.backoff_base_ms = static_cast<std::uint64_t>(
          std::max(1, std::atoi(need_value().c_str())));
    } else if (flag == "--profile") {
      cfg.profile_path = need_value();
    } else if (flag == "--trace") {
      cfg.trace_path = need_value();
    } else if (flag == "--metrics-file") {
      cfg.metrics_path = need_value();
    } else if (flag == "--metrics-interval-ms") {
      cfg.metrics_interval_ms = std::max(10, std::atoi(need_value().c_str()));
    } else if (flag == "--flight-dir") {
      cfg.opts.flight_dir = need_value();
    } else if (flag == "--log-level") {
      const auto l = obs::log::parse_level(need_value());
      if (!l.ok()) usage(l.status().message.c_str());
      obs::log::set_level(l.value());
    } else if (flag == "--no-telemetry") {
      no_value();
      cfg.opts.telemetry = false;
    } else if (flag == "--help" || flag == "-h") {
      usage(nullptr);
    } else {
      usage(("unknown flag: " + flag).c_str());
    }
  }
  if (cfg.socket_path.empty()) usage("--socket PATH is required");

  if (!cfg.supervise) {
    // Foreground worker owning its own socket: WorkerConfig defaults
    // (listen_fd -1) make the Server bind, and there is no journal —
    // without a supervisor nobody would read it.
    return worker_run(cfg, serve::WorkerConfig{});
  }

  cfg.sup.socket_path = cfg.socket_path;
  cfg.sup.force_socket = cfg.sopts.force_socket;
  cfg.sup.journal_path = cfg.socket_path + ".journal";
  serve::Supervisor supervisor(
      cfg.sup,
      [&cfg](const serve::WorkerConfig& w) { return worker_run(cfg, w); });
  return supervisor.run();
}

}  // namespace

int main(int argc, char** argv) {
  // Same top-level error boundary as the one-shot CLI: every failure maps
  // to a documented exit code (docs/robustness.md).
  try {
    return run(argc, argv);
  } catch (const mgc::guard::Error& e) {
    // The boundary of last resort: it must work even when the failure IS
    // the logging/telemetry configuration.
    // mgc-lint: stderr-ok -- last-resort error boundary, may predate logging
    std::fprintf(stderr, "mgc_serve: error (%s): %s\n",
                 mgc::guard::code_name(e.code()), e.what());
    return mgc::guard::exit_code(e.code());
  } catch (const std::exception& e) {
    // mgc-lint: stderr-ok -- last-resort error boundary, may predate logging
    std::fprintf(stderr, "mgc_serve: error (internal): %s\n", e.what());
    return mgc::guard::exit_code(mgc::guard::Code::kInternal);
  } catch (...) {
    // mgc-lint: stderr-ok -- last-resort error boundary, may predate logging
    std::fprintf(stderr, "mgc_serve: error (internal): unknown exception\n");
    return mgc::guard::exit_code(mgc::guard::Code::kInternal);
  }
}
