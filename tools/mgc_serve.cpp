// mgc_serve — long-running coarsening service over a local socket.
//
// Speaks the line-delimited JSON protocol documented in docs/serving.md:
// one request object per line, one response object per line. The daemon
// keeps a HierarchyCache so a graph coarsened once serves any number of
// partition / cluster / fiedler requests (at any k / resolution) without
// re-coarsening — the paper's amortisation argument, realised as a
// process.
//
// Usage:
//   mgc_serve --socket PATH [options]
//
// Options (flags override the MGC_SERVE_* environment, which overrides
// the built-in defaults):
//   --socket PATH          AF_UNIX socket path to listen on (required)
//   --workers N            concurrent expensive requests   [MGC_SERVE_WORKERS]
//   --queue N              waiting requests before typed
//                          overload rejection               [MGC_SERVE_QUEUE]
//   --cache-budget BYTES   resident hierarchy cap, K/M/G
//                          suffixes ok (0 = uncapped) [MGC_SERVE_CACHE_BUDGET]
//   --max-request BYTES    request line cap           [MGC_SERVE_MAX_REQUEST]
//   --backend threads|serial                           [MGC_SERVE_BACKEND]
//   --deadline-ms N        default per-request deadline (0 = none)
//   --profile FILE.json    write an mgc-profile report after draining
//   --trace FILE.json      write a Chrome trace after draining
//
// Shutdown: SIGTERM / SIGINT or a {"op":"shutdown"} request DRAIN the
// daemon — in-flight requests finish and get replies, the socket file is
// unlinked, profile/trace files are flushed, exit code 0. Exit codes
// follow the library-wide contract in docs/robustness.md.

#include <cstdio>
#include <cstring>
#include <string>

#include "guard/env.hpp"
#include "guard/status.hpp"
#include "prof/prof.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "trace/trace.hpp"

namespace {

using namespace mgc;

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "mgc_serve: %s\n", msg);
  std::fprintf(stderr,
               "usage: mgc_serve --socket PATH [--workers N] [--queue N]\n"
               "                 [--cache-budget BYTES] [--max-request "
               "BYTES]\n"
               "                 [--backend threads|serial] [--deadline-ms "
               "N]\n"
               "                 [--profile FILE.json] [--trace FILE.json]\n"
               "see docs/serving.md\n");
  std::exit(2);
}

int run(int argc, char** argv) {
  std::string socket_path;
  std::string profile_path;
  std::string trace_path;

  serve::ServiceOptions opts = serve::ServiceOptions::from_env().value();

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string value;
    const std::size_t eq = flag.find('=');
    bool have_value = false;
    if (eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      have_value = true;
    }
    auto need_value = [&]() -> const std::string& {
      if (have_value) return value;
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      value = argv[++i];
      return value;
    };
    if (flag == "--socket") {
      socket_path = need_value();
    } else if (flag == "--workers") {
      opts.workers = std::max(1, std::atoi(need_value().c_str()));
    } else if (flag == "--queue") {
      opts.queue_limit = std::max(0, std::atoi(need_value().c_str()));
    } else if (flag == "--cache-budget") {
      opts.cache_budget_bytes = guard::parse_bytes(need_value()).value();
    } else if (flag == "--max-request") {
      opts.max_request_bytes =
          std::max<std::size_t>(256, guard::parse_bytes(need_value()).value());
    } else if (flag == "--backend") {
      opts.backend = need_value();
      if (opts.backend != "threads" && opts.backend != "serial") {
        usage("--backend must be threads or serial");
      }
    } else if (flag == "--deadline-ms") {
      opts.default_deadline_ms = std::atof(need_value().c_str());
    } else if (flag == "--profile") {
      profile_path = need_value();
    } else if (flag == "--trace") {
      trace_path = need_value();
    } else if (flag == "--help" || flag == "-h") {
      usage(nullptr);
    } else {
      usage(("unknown flag: " + flag).c_str());
    }
  }
  if (socket_path.empty()) usage("--socket PATH is required");

  if (!trace_path.empty()) trace::enable();
  if (!profile_path.empty() || !trace_path.empty()) {
    prof::enable();  // prof feeds the trace's region events
  }

  serve::install_drain_handlers();
  serve::Service service(opts);
  serve::Server server(service, socket_path);

  std::fprintf(stderr,
               "mgc_serve: listening on %s (workers=%d queue=%d "
               "cache-budget=%zu backend=%s)\n",
               socket_path.c_str(), opts.workers, opts.queue_limit,
               opts.cache_budget_bytes, opts.backend.c_str());

  const guard::Status st = server.run();
  if (!st.ok()) {
    std::fprintf(stderr, "mgc_serve: %s\n", st.to_string().c_str());
    return guard::exit_code(st.code);
  }

  const serve::HierarchyCache::Stats cs = service.cache_stats();
  std::fprintf(stderr,
               "mgc_serve: drained after %llu requests "
               "(cache: %llu hits, %llu misses, %llu evictions)\n",
               static_cast<unsigned long long>(service.requests_handled()),
               static_cast<unsigned long long>(cs.hits),
               static_cast<unsigned long long>(cs.misses),
               static_cast<unsigned long long>(cs.evictions));

  // Flush observability output last so it covers the whole run. A report
  // that cannot be written is a real failure (exit 3), not a silent one.
  if (!profile_path.empty()) {
    prof::set_meta("tool", std::string("mgc_serve"));
    prof::set_meta("requests",
                   static_cast<long long>(service.requests_handled()));
    prof::set_meta("cache_hits", static_cast<long long>(cs.hits));
    prof::set_meta("cache_misses", static_cast<long long>(cs.misses));
    const guard::Status ps = prof::write_json_file(profile_path);
    if (!ps.ok()) throw guard::Error(ps);
    std::fprintf(stderr, "mgc_serve: wrote profile to %s\n",
                 profile_path.c_str());
  }
  if (!trace_path.empty()) {
    const guard::Status ts = trace::write_chrome_json_file(trace_path);
    if (!ts.ok()) throw guard::Error(ts);
    std::fprintf(stderr, "mgc_serve: wrote trace to %s\n",
                 trace_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Same top-level error boundary as the one-shot CLI: every failure maps
  // to a documented exit code (docs/robustness.md).
  try {
    return run(argc, argv);
  } catch (const mgc::guard::Error& e) {
    std::fprintf(stderr, "mgc_serve: error (%s): %s\n",
                 mgc::guard::code_name(e.code()), e.what());
    return mgc::guard::exit_code(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mgc_serve: error (internal): %s\n", e.what());
    return mgc::guard::exit_code(mgc::guard::Code::kInternal);
  } catch (...) {
    std::fprintf(stderr, "mgc_serve: error (internal): unknown exception\n");
    return mgc::guard::exit_code(mgc::guard::Code::kInternal);
  }
}
