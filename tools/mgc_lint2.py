#!/usr/bin/env python3
"""mgc_lint2: semantic lint for mgc, libclang-backed with a syntactic fallback.

mgc_lint (v1) is deliberately AST-free and catches the textual shapes of a
few race-discipline mistakes. This second pass covers the rules that need
(or at least want) semantic information:

``discarded-status``
    A call whose result is ``guard::Status`` or ``guard::Result<T>`` used
    as a bare expression statement. Status/Result are ``[[nodiscard]]``,
    so the compiler flags most of these — this rule additionally covers
    templated code paths the compiler only checks per instantiation, and
    keeps the contract enforced even for toolchains with the warning off.
    Deliberate discards are spelled ``(void)call()`` (which this rule,
    like the compiler, does not flag) or allow-tagged.

``unguarded-mutex``
    A class declares a ``Mutex`` (or ``std::mutex``) member but *no*
    member carries ``MGC_GUARDED_BY``. A mutex that guards nothing the
    analysis can see is either dead weight or — far more likely — guards
    data that silently lost its annotation in a refactor.

``blocking-in-parallel``
    A blocking call (lock acquisition, condition wait, sleep, file I/O)
    inside a ``parallel_*`` lambda. One blocked worker idles a pool-width
    slice of the machine; blocking belongs outside the dispatch
    (docs/parallelism.md).

``missing-ctx-poll``
    A substantial loop (>= {MIN_LOOP_LINES} lines) inside a function that
    takes a ``guard::Ctx`` but whose body neither dispatches a parallel
    kernel (which polls at chunk granularity) nor polls the Ctx itself.
    Such a loop is a cancellation/deadline blind spot: the "201-level
    stall" failure mode the guard layer exists to bound
    (docs/robustness.md).

``unbudgeted-alloc``
    A data-sized allocation (``reserve`` / ``resize`` / ``new[]`` /
    ``malloc`` with a non-literal size) in the budget-scoped directories
    (src/multilevel/, src/serve/, src/ooc/) whose enclosing function
    shows no ``guard::MemoryBudget`` / ``ScopedCharge`` activity. An
    allocation the ledger never saw is memory the degradation ladder
    cannot spill or shard around — it surfaces as the OOM killer instead
    of a typed refusal (docs/out-of-core.md). Literal-sized bookkeeping
    is never flagged; deliberate untracked buffers (transient serialize
    scratch, reply strings bounded by the request) are allow-tagged.

plus semantic re-implementations of the v1 rules (``racy-write``,
``region-in-parallel``, ``bare-ofstream``) so running mgc_lint2 alone
still enforces the full catalogue.

Frontends
---------
With the libclang Python bindings installed (CI), files are parsed into
real ASTs using the compile flags from ``--compile-commands`` (CMake's
``compile_commands.json``; configure with
``-DCMAKE_EXPORT_COMPILE_COMMANDS=ON``). Without them, a pure-Python
syntactic frontend implements the same rules over lexed source — weaker
on exotic code, but byte-identical on the fixture corpus in tests/lint/,
which pins both frontends to the same finding sets. ``--require-libclang``
makes the fallback a hard error (CI uses it so the semantic pass can
never silently degrade).

Findings and allowlist tags use the shared grammar from
tools/lint_common.py; see docs/static-analysis.md for the catalogue.

Usage::

    python3 tools/mgc_lint2.py src tools bench
    python3 tools/mgc_lint2.py --require-libclang \
        --compile-commands build/compile_commands.json src tools bench

Exit status: 0 = clean, 1 = findings, 2 = usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

from lint_common import (
    Finding,
    allowlisted,
    collect_files,
    match_forward,
    print_findings,
    read_source,
    strip_comments_and_strings,
)
from mgc_lint import (
    ATOMIC_TARGET,
    REGION_CTOR,
    find_parallel_lambdas,
    plain_indexed_writes,
)

# ---------------------------------------------------------------------------
# Shared rule vocabulary — both frontends match against these, so their
# findings agree on the fixture corpus.

#: Return-type spellings that make a dropped call a discarded-status.
STATUS_TYPES = re.compile(r"\b(?:guard\s*::\s*)?(?:Status|Result\s*<)")

#: Mutex-flavoured member types for unguarded-mutex.
MUTEX_TYPES = re.compile(r"\b(?:mgc\s*::\s*)?Mutex\b|\bstd\s*::\s*mutex\b")

#: Blocking constructs forbidden inside parallel lambdas.
BLOCKING = re.compile(
    r"\bsleep_for\b|\bsleep_until\b"
    r"|\bstd\s*::\s*[io]?fstream\b|\bfopen\b|\bfread\b|\bfwrite\b"
    r"|\bMutexLock\b|\bstd\s*::\s*lock_guard\b|\bstd\s*::\s*unique_lock\b"
    r"|\bstd\s*::\s*scoped_lock\b"
    r"|[.>]\s*lock\s*\(|[.>]\s*wait\s*\(|[.>]\s*wait_for\s*\("
)

#: Evidence inside a loop that cancellation/deadlines are honoured: either
#: a direct Ctx poll or a dispatch/guarded driver that polls internally.
CTX_POLL = re.compile(
    r"\bshould_stop\b|\bstop_code\b|\bthrow_if_stopped\b|\bstop_status\b"
    r"|\.\s*expired\s*\(|\.\s*cancelled\s*\(|\beffective_ctx\b"
    r"|\bparallel_(?:for|reduce|sum|exclusive_scan)\b|\w+_guarded\s*\("
)

#: Loops shorter than this many source lines are assumed to be bounded
#: bookkeeping (copying a report, summing stats) and are not flagged.
MIN_LOOP_LINES = 8

#: Directories where every data-sized allocation must be visible to the
#: guard::MemoryBudget ledger (docs/out-of-core.md). Generic utility code
#: elsewhere sizes buffers off its inputs legitimately; the discipline is
#: enforced only where hierarchy-scale data lives. The fixture directory
#: is scoped so the corpus can pin the rule.
BUDGET_SCOPED_DIRS = ("src/multilevel/", "src/serve/", "src/ooc/",
                      "tests/lint/fixtures/")

#: Paren-delimited allocation calls (size expression inside the parens).
ALLOC_PAREN = re.compile(
    r"(?:[.]\s*|->\s*)(?:reserve|resize)\s*\(|\b(?:malloc|calloc)\s*\(")

#: Array new (size expression inside the brackets).
ALLOC_NEW = re.compile(
    r"\bnew\s+[A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*"
    r"(?:\s*<[^;{}\[\]]*>)?\s*\[")

#: Ledger activity that shows the enclosing function is budget-aware:
#: MemoryBudget itself, ScopedCharge, charge()/try_charge()/
#: charge_unbounded(), mem_charge, charged_hierarchy, ...
BUDGET_EVIDENCE = re.compile(r"\b\w*[Cc]harge\w*\b|\bMemoryBudget\b")

MESSAGES = {
    "discarded-status": (
        "call result (guard::Status / Result) is discarded — every "
        "producer returns one so the caller must look at it; use "
        "(void)call() with a comment for a deliberate discard"
    ),
    "unguarded-mutex": (
        "mutex member but no member in this class carries MGC_GUARDED_BY "
        "— annotate what it guards (core/thread_annotations.hpp) or "
        "justify the bare mutex"
    ),
    "blocking-in-parallel": (
        "blocking call inside a parallel_* lambda — one blocked worker "
        "idles the pool; move locks, waits, sleeps, and file I/O outside "
        "the dispatch"
    ),
    "missing-ctx-poll": (
        "substantial loop in a guard::Ctx-taking function with no Ctx "
        "poll and no parallel dispatch — a stalled iteration here is "
        "invisible to cancellation and deadlines"
    ),
    "unbudgeted-alloc": (
        "data-sized allocation in budget-scoped code with no "
        "MemoryBudget / ScopedCharge activity in the enclosing function "
        "— memory the ledger never saw cannot trigger the degradation "
        "ladder, it triggers the OOM killer (docs/out-of-core.md)"
    ),
}


def _line_of(clean: str, offset: int) -> int:
    """0-based line index of an offset."""
    return clean.count("\n", 0, offset)


# ---------------------------------------------------------------------------
# Syntactic frontend


def _statement_prefix_ok(clean: str, stmt_start: int, call_start: int) -> bool:
    """True when the text between a statement boundary and the call is just
    a namespace/class qualification (so the call IS the statement).

    Member-call syntax (`obj.f()` / `p->f()`) is deliberately NOT matched:
    resolving which `f` that dispatches to needs type information the
    syntactic frontend does not have, and flagging by name alone
    false-positives on unrelated methods (std::ostream::flush vs a local
    `Status flush()`). The libclang frontend covers member calls."""
    prefix = clean[stmt_start:call_start]
    return re.fullmatch(r"\s*(?:[A-Za-z_]\w*\s*::\s*)*", prefix) is not None


def _collect_status_functions(roots: list[str]) -> set[str]:
    """Names of functions declared to return guard::Status / Result<T>,
    collected across the scanned roots plus src/ (so linting tools/ alone
    still knows about the library's producers)."""
    names: set[str] = set()
    decl = re.compile(
        r"\b(?:guard\s*::\s*)?(?:Status|Result\s*<[^;{}]{0,200}?>)\s+"
        r"(?:[A-Za-z_]\w*\s*::\s*)?([A-Za-z_]\w*)\s*\("
    )
    scan_roots = list(roots)
    if os.path.isdir("src") and "src" not in scan_roots:
        scan_roots.append("src")
    for path in collect_files(scan_roots):
        text = read_source(path)
        if text is None:
            continue
        clean = strip_comments_and_strings(text)
        for m in decl.finditer(clean):
            names.add(m.group(1))
    # Control-flow keywords that the decl regex can momentarily capture in
    # odd formatting; never treat them as producers.
    names -= {"if", "for", "while", "switch", "return", "sizeof", "catch"}
    return names


def _syntactic_discarded_status(path: str, clean: str, raw_lines: list[str],
                                producers: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    # A file-local declaration of the same name with a non-Status return
    # type shadows the global producer set (`void flush()` in one TU vs
    # `Status flush()` in another).
    local_void = set(re.findall(r"\bvoid\s+([A-Za-z_]\w*)\s*\(", clean))
    for name in producers - local_void:
        for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(", clean):
            call_open = clean.rfind("(", m.start(), m.end())
            close = match_forward(clean, call_open, "(", ")")
            if close < 0:
                continue
            # The call must be the whole statement: `;` after the close
            # paren, and only an object/namespace path before the name
            # since the previous statement boundary.
            after = clean[close + 1:close + 2]
            if after != ";":
                continue
            stmt_start = max(clean.rfind(c, 0, m.start()) for c in ";{}")
            if not _statement_prefix_ok(clean, stmt_start + 1, m.start()):
                continue
            line_idx = _line_of(clean, m.start())
            if allowlisted(raw_lines, line_idx, "discarded-status"):
                continue
            findings.append(Finding(
                path=path, line=line_idx + 1, rule="discarded-status",
                message=MESSAGES["discarded-status"],
                snippet=raw_lines[line_idx].strip()))
    return findings


CLASS_HEAD = re.compile(r"\b(class|struct)\s+(?:MGC_\w+(?:\([^)]*\))?\s+)?"
                        r"([A-Za-z_]\w*)\s*(?::[^;{]*)?{")

MEMBER_MUTEX = re.compile(
    r"^\s*(?:mutable\s+)?(?:(?:mgc\s*::\s*)?Mutex|std\s*::\s*mutex)\s+"
    r"[A-Za-z_]\w*\s*(?:MGC_\w+(?:\([^)]*\))?\s*)?;"
)


def _syntactic_unguarded_mutex(path: str, clean: str,
                               raw_lines: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    for m in CLASS_HEAD.finditer(clean):
        body_open = clean.index("{", m.start())
        body_close = match_forward(clean, body_open, "{", "}")
        if body_close < 0:
            continue
        body = clean[body_open + 1:body_close]
        if "MGC_GUARDED_BY" in body:
            continue
        # Flag each mutex member line in a class with zero guarded members.
        for lm in re.finditer(r"[^\n;{}]*;", body):
            stmt = lm.group(0)
            if not MEMBER_MUTEX.match(stmt.strip()) and not (
                    MUTEX_TYPES.search(stmt) and "(" not in stmt
                    and stmt.strip().endswith(";")):
                continue
            line_idx = _line_of(clean, body_open + 1 + lm.start()
                                + len(stmt) - len(stmt.lstrip()))
            if allowlisted(raw_lines, line_idx, "unguarded-mutex"):
                continue
            findings.append(Finding(
                path=path, line=line_idx + 1, rule="unguarded-mutex",
                message=MESSAGES["unguarded-mutex"],
                snippet=raw_lines[line_idx].strip()))
    return findings


def _syntactic_blocking_in_parallel(path: str, clean: str,
                                    raw_lines: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    for lam in find_parallel_lambdas(clean):
        body = clean[lam.body_start:lam.body_end]
        for m in BLOCKING.finditer(body):
            line_idx = _line_of(clean, lam.body_start + m.start())
            if allowlisted(raw_lines, line_idx, "blocking-in-parallel"):
                continue
            findings.append(Finding(
                path=path, line=line_idx + 1, rule="blocking-in-parallel",
                message=MESSAGES["blocking-in-parallel"],
                snippet=raw_lines[line_idx].strip()))
    return findings


CTX_PARAM = re.compile(r"\b(?:guard\s*::\s*)?Ctx\s*&?\s*\w*\s*(?:=[^,)]*)?[,)]")
FUNC_HEAD = re.compile(r"\(([^;{}()]*)\)\s*(?:const\s*)?(?:noexcept\s*)?{")
LOOP_HEAD = re.compile(r"\b(for|while)\s*\(")


def _loops_in(body: str, base: int) -> list[tuple[int, int, int]]:
    """(head_offset, body_open, body_close) absolute offsets of for/while
    loops directly in `body` (nested loops are inside the returned spans)."""
    loops: list[tuple[int, int, int]] = []
    i = 0
    while True:
        m = LOOP_HEAD.search(body, i)
        if m is None:
            return loops
        cond_open = body.index("(", m.start())
        cond_close = match_forward(body, cond_open, "(", ")")
        if cond_close < 0:
            return loops
        j = cond_close + 1
        while j < len(body) and body[j].isspace():
            j += 1
        if j < len(body) and body[j] == "{":
            loop_close = match_forward(body, j, "{", "}")
            if loop_close < 0:
                return loops
            loops.append((base + m.start(), base + j, base + loop_close))
            i = loop_close + 1
        else:
            i = cond_close + 1


def _syntactic_missing_ctx_poll(path: str, clean: str,
                                raw_lines: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    for fm in FUNC_HEAD.finditer(clean):
        params = fm.group(1)
        if not CTX_PARAM.search(params + ")"):
            continue
        body_open = clean.index("{", fm.end() - 1)
        body_close = match_forward(clean, body_open, "{", "}")
        if body_close < 0:
            continue
        # Outermost loops first; a flagged loop is one finding, and a loop
        # that polls is trusted to bound everything nested inside it.
        pending = _loops_in(clean[body_open + 1:body_close], body_open + 1)
        while pending:
            head, lopen, lclose = pending.pop(0)
            loop_body = clean[lopen + 1:lclose]
            if CTX_POLL.search(loop_body):
                continue
            span = _line_of(clean, lclose) - _line_of(clean, lopen)
            if span < MIN_LOOP_LINES:
                # Short bookkeeping loop: skip it, but still examine loops
                # nested within (a long inner loop must poll on its own).
                pending = _loops_in(loop_body, lopen + 1) + pending
                continue
            line_idx = _line_of(clean, head)
            if allowlisted(raw_lines, line_idx, "missing-ctx-poll"):
                continue
            findings.append(Finding(
                path=path, line=line_idx + 1, rule="missing-ctx-poll",
                message=MESSAGES["missing-ctx-poll"],
                snippet=raw_lines[line_idx].strip()))
    return findings


def _budget_scoped(path: str) -> bool:
    p = os.path.abspath(path).replace(os.sep, "/")
    return any(d in p for d in BUDGET_SCOPED_DIRS)


def _brace_blocks(clean: str) -> list[tuple[int, int]]:
    """(open, close) offsets of every `(...) {` body — function bodies,
    plus harmless extras like `while (...) {`. An alloc site is judged
    against ALL blocks containing it, so over-matching an inner control
    block cannot hide ledger evidence that lives in the real function
    body around it."""
    spans: list[tuple[int, int]] = []
    for fm in FUNC_HEAD.finditer(clean):
        body_open = clean.index("{", fm.end() - 1)
        body_close = match_forward(clean, body_open, "{", "}")
        if body_close > 0:
            spans.append((body_open, body_close))
    return spans


def _syntactic_unbudgeted_alloc(path: str, clean: str,
                                raw_lines: list[str]) -> list[Finding]:
    if not _budget_scoped(path):
        return []
    # (offset, size-expression) of every allocation call.
    sites: list[tuple[int, str]] = []
    for m in ALLOC_PAREN.finditer(clean):
        open_p = clean.rfind("(", m.start(), m.end())
        close_p = match_forward(clean, open_p, "(", ")")
        if close_p > 0:
            sites.append((m.start(), clean[open_p + 1:close_p]))
    for m in ALLOC_NEW.finditer(clean):
        open_b = clean.rfind("[", m.start(), m.end())
        close_b = match_forward(clean, open_b, "[", "]")
        if close_b > 0:
            sites.append((m.start(), clean[open_b + 1:close_b]))
    if not sites:
        return []
    blocks = _brace_blocks(clean)
    findings: list[Finding] = []
    for off, size_expr in sorted(sites):
        if not re.search(r"[A-Za-z_]", size_expr):
            continue  # literal-sized: bounded bookkeeping, not data-scale
        enclosing = [(o, c) for o, c in blocks if o < off < c]
        if any(BUDGET_EVIDENCE.search(clean[o + 1:c]) for o, c in enclosing):
            continue
        line_idx = _line_of(clean, off)
        if allowlisted(raw_lines, line_idx, "unbudgeted-alloc"):
            continue
        findings.append(Finding(
            path=path, line=line_idx + 1, rule="unbudgeted-alloc",
            message=MESSAGES["unbudgeted-alloc"],
            snippet=raw_lines[line_idx].strip()))
    return findings


def _syntactic_v1_rules(path: str, clean: str,
                        raw_lines: list[str]) -> list[Finding]:
    """v1 rules re-emitted by v2 so mgc_lint2 alone enforces the full
    catalogue. Logic is shared with mgc_lint via its imported helpers."""
    findings: list[Finding] = []
    for m in re.finditer(r"\bstd\s*::\s*ofstream\b", clean):
        line_idx = _line_of(clean, m.start())
        if allowlisted(raw_lines, line_idx, "bare-ofstream"):
            continue
        findings.append(Finding(
            path=path, line=line_idx + 1, rule="bare-ofstream",
            message="raw std::ofstream — durable output must go through "
                    "guard::atomic_write_file so a crash cannot leave a "
                    "truncated file",
            snippet=raw_lines[line_idx].strip()))
    for lam in find_parallel_lambdas(clean):
        body = clean[lam.body_start:lam.body_end]
        for m in REGION_CTOR.finditer(body):
            line_idx = _line_of(clean, lam.body_start + m.start())
            if allowlisted(raw_lines, line_idx, "region-in-parallel"):
                continue
            findings.append(Finding(
                path=path, line=line_idx + 1, rule="region-in-parallel",
                message="prof::Region constructed inside a parallel lambda "
                        "— per-iteration region overhead distorts the "
                        "profile; hoist it around the dispatch",
                snippet=raw_lines[line_idx].strip()))
        for array in sorted(set(ATOMIC_TARGET.findall(body))):
            for off in plain_indexed_writes(body, array):
                line_idx = _line_of(clean, lam.body_start + off)
                if allowlisted(raw_lines, line_idx, "racy-write"):
                    continue
                findings.append(Finding(
                    path=path, line=line_idx + 1, rule="racy-write",
                    message=f"plain indexed write to '{array}', which is "
                            f"also passed to atomic_* in the same parallel "
                            f"lambda",
                    snippet=raw_lines[line_idx].strip()))
    return findings


def syntactic_scan(files: list[str], roots: list[str]) -> list[Finding]:
    producers = _collect_status_functions(roots)
    findings: list[Finding] = []
    for path in files:
        text = read_source(path)
        if text is None:
            continue
        raw_lines = text.splitlines()
        clean = strip_comments_and_strings(text)
        findings += _syntactic_discarded_status(path, clean, raw_lines,
                                                producers)
        findings += _syntactic_unguarded_mutex(path, clean, raw_lines)
        findings += _syntactic_blocking_in_parallel(path, clean, raw_lines)
        findings += _syntactic_missing_ctx_poll(path, clean, raw_lines)
        findings += _syntactic_unbudgeted_alloc(path, clean, raw_lines)
        findings += _syntactic_v1_rules(path, clean, raw_lines)
    return findings


# ---------------------------------------------------------------------------
# libclang frontend


def load_libclang():
    """The clang.cindex module, or None when the bindings are missing."""
    try:
        import clang.cindex as cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
    except Exception:  # library present but unloadable
        for name in ("libclang.so", "libclang-14.so", "libclang.so.1",
                     "libclang-15.so", "libclang-16.so"):
            try:
                cindex.Config.set_library_file(name)
                cindex.Index.create()
                break
            except Exception:
                cindex.Config.loaded = False
        else:
            return None
    return cindex


def load_compile_args(cc_path: str | None) -> dict[str, list[str]]:
    """abs source path -> compiler args from compile_commands.json."""
    if cc_path is None or not os.path.exists(cc_path):
        return {}
    with open(cc_path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    args: dict[str, list[str]] = {}
    for e in entries:
        src = os.path.normpath(os.path.join(e["directory"], e["file"]))
        if "arguments" in e:
            argv = list(e["arguments"])
        else:
            argv = e["command"].split()
        # Strip the compiler itself, -c/-o pairs, and the source filename —
        # libclang wants only the flags.
        keep: list[str] = []
        skip_next = False
        for a in argv[1:]:
            if skip_next:
                skip_next = False
                continue
            if a == "-c":
                continue
            if a == "-o":
                skip_next = True
                continue
            if os.path.normpath(os.path.join(e["directory"], a)) == src:
                continue
            keep.append(a)
        args[src] = keep
    return args


DEFAULT_CLANG_ARGS = ["-std=c++20", "-x", "c++", "-Isrc", "-I."]


class ClangScanner:
    """Implements the rule catalogue over libclang ASTs. Structure comes
    from cursors; pattern vocabulary (BLOCKING, CTX_POLL, ...) is shared
    with the syntactic frontend so both emit identical findings."""

    def __init__(self, cindex, compile_args: dict[str, list[str]]):
        self.cindex = cindex
        self.index = cindex.Index.create()
        self.compile_args = compile_args

    def scan(self, path: str) -> list[Finding]:
        text = read_source(path)
        if text is None:
            return []
        raw_lines = text.splitlines()
        abspath = os.path.abspath(path)
        args = self.compile_args.get(abspath, DEFAULT_CLANG_ARGS)
        tu = self.index.parse(
            abspath, args=args,
            options=self.cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        findings: list[Finding] = []
        clean = strip_comments_and_strings(text)

        ck = self.cindex.CursorKind

        def local(cursor) -> bool:
            loc = cursor.location
            return loc.file is not None and os.path.abspath(loc.file.name) == abspath

        def add(cursor, rule: str, message: str | None = None):
            line_idx = cursor.location.line - 1
            if allowlisted(raw_lines, line_idx, rule):
                return
            findings.append(Finding(
                path=path, line=line_idx + 1, rule=rule,
                message=message or MESSAGES[rule],
                snippet=raw_lines[line_idx].strip()
                if line_idx < len(raw_lines) else ""))

        def extent_text(cursor) -> str:
            ext = cursor.extent
            if ext.start.offset is None:
                return ""
            return clean[ext.start.offset:ext.end.offset]

        def walk(cursor, ctx_fn_depth: int = 0):
            for child in cursor.get_children():
                if not local(child) and child.kind not in (
                        ck.TRANSLATION_UNIT,):
                    # Still descend into namespaces etc. that span files.
                    if child.kind not in (ck.NAMESPACE,):
                        continue
                kind = child.kind

                if kind == ck.COMPOUND_STMT:
                    self._discarded_status_in(child, add, ck)

                if kind in (ck.CLASS_DECL, ck.STRUCT_DECL) and \
                        child.is_definition():
                    self._unguarded_mutex_in(child, add, ck)

                if kind == ck.CALL_EXPR and \
                        child.spelling in ("parallel_for", "parallel_reduce",
                                           "parallel_sum",
                                           "parallel_exclusive_scan"):
                    self._blocking_in(child, add, ck, extent_text)
                    self._region_in(child, add, ck)

                is_ctx_fn = False
                if kind in (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                            ck.FUNCTION_TEMPLATE) and child.is_definition():
                    is_ctx_fn = any("Ctx" in (a.type.spelling or "")
                                    for a in child.get_arguments())
                if kind in (ck.WHILE_STMT, ck.FOR_STMT) and ctx_fn_depth > 0:
                    if self._flag_unpolled_loop(child, add, extent_text):
                        continue  # one finding covers nested loops

                if kind in (ck.VAR_DECL, ck.CXX_FUNCTIONAL_CAST_EXPR,
                            ck.CXX_TEMPORARY_OBJECT_EXPR):
                    t = child.type.spelling or ""
                    if "ofstream" in t:
                        add(child, "bare-ofstream",
                            "raw std::ofstream — durable output must go "
                            "through guard::atomic_write_file so a crash "
                            "cannot leave a truncated file")

                walk(child, ctx_fn_depth + (1 if is_ctx_fn else 0))

        walk(tu.cursor)
        # racy-write stays textual even in libclang mode: per-lambda alias
        # analysis over AST cursors buys nothing over the name-based match.
        for f in _syntactic_v1_rules(path, clean, raw_lines):
            if f.rule == "racy-write":
                findings.append(f)
        # unbudgeted-alloc likewise: the ledger-evidence scan is about
        # names in scope, not types, so both frontends share one detector
        # and stay byte-identical on the fixture corpus by construction.
        findings += _syntactic_unbudgeted_alloc(path, clean, raw_lines)
        return findings

    def _discarded_status_in(self, compound, add, ck):
        for stmt in compound.get_children():
            if stmt.kind != ck.CALL_EXPR:
                continue
            rt = stmt.type.spelling or ""
            if STATUS_TYPES.search(rt):
                add(stmt, "discarded-status")

    def _unguarded_mutex_in(self, cls, add, ck):
        fields = [c for c in cls.get_children() if c.kind == ck.FIELD_DECL]
        mutexes = [f for f in fields
                   if MUTEX_TYPES.search(f.type.spelling or "")]
        if not mutexes:
            return
        for f in fields:
            toks = " ".join(t.spelling for t in f.get_tokens())
            if "guarded_by" in toks or "MGC_GUARDED_BY" in toks:
                return
        for m in mutexes:
            add(m, "unguarded-mutex")

    def _lambdas_in(self, call, ck):
        out = []

        def rec(c):
            for ch in c.get_children():
                if ch.kind == ck.LAMBDA_EXPR:
                    out.append(ch)
                else:
                    rec(ch)

        rec(call)
        return out

    def _blocking_in(self, call, add, ck, extent_text):
        for lam in self._lambdas_in(call, ck):
            body = extent_text(lam)
            for m in BLOCKING.finditer(body):
                line = body.count("\n", 0, m.start()) + lam.extent.start.line
                add(_CursorAt(line), "blocking-in-parallel")

    def _region_in(self, call, add, ck):
        for lam in self._lambdas_in(call, ck):
            for c in lam.walk_preorder():
                t = c.type.spelling or ""
                if c.kind in (ck.VAR_DECL, ck.CXX_TEMPORARY_OBJECT_EXPR) \
                        and "prof::Region" in t.replace(" ", ""):
                    add(c, "region-in-parallel",
                        "prof::Region constructed inside a parallel lambda "
                        "— per-iteration region overhead distorts the "
                        "profile; hoist it around the dispatch")

    def _flag_unpolled_loop(self, loop, add, extent_text) -> bool:
        body = extent_text(loop)
        if CTX_POLL.search(body):
            return False
        span = loop.extent.end.line - loop.extent.start.line
        if span < MIN_LOOP_LINES:
            return False
        add(loop, "missing-ctx-poll")
        return True


class _CursorAt:
    """Minimal location shim so add() can report token-scan hits that have
    a line but no cursor."""

    def __init__(self, line: int):
        class _Loc:
            pass

        self.location = _Loc()
        self.location.line = line


# ---------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="+", help="files or directories to lint")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for accurate parse flags "
                         "(libclang mode)")
    ap.add_argument("--require-libclang", action="store_true",
                    help="fail (exit 2) instead of falling back to the "
                         "syntactic frontend when libclang is unavailable")
    ap.add_argument("--frontend", choices=["auto", "libclang", "syntactic"],
                    default="auto",
                    help="force a frontend (default: libclang when "
                         "available)")
    args = ap.parse_args(argv)

    files = collect_files(args.paths)
    if not files:
        print("mgc_lint2: no input files", file=sys.stderr)
        return 2

    cindex = None
    if args.frontend in ("auto", "libclang"):
        cindex = load_libclang()
    if cindex is None and (args.require_libclang
                           or args.frontend == "libclang"):
        print("mgc_lint2: libclang Python bindings unavailable and "
              "--require-libclang/--frontend=libclang given", file=sys.stderr)
        return 2

    if cindex is not None:
        scanner = ClangScanner(cindex,
                               load_compile_args(args.compile_commands))
        findings: list[Finding] = []
        for path in files:
            findings.extend(scanner.scan(path))
    else:
        if args.frontend == "auto" and args.compile_commands:
            print("mgc_lint2: libclang unavailable; using the syntactic "
                  "frontend", file=sys.stderr)
        findings = syntactic_scan(files, args.paths)

    return print_findings(findings, len(files), tool="mgc_lint2")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
