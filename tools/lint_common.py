"""lint_common: shared infrastructure for mgc_lint (v1) and mgc_lint2.

Both linters — the AST-free regex pass (mgc_lint.py) and the
libclang-backed semantic pass (mgc_lint2.py) — emit the same finding
format and honour the same allowlist grammar, so CI output, editors, and
the fixture tests in tests/lint/ can treat them interchangeably:

Finding format (one per finding, stable across both linters)::

    <file>:<line>: <rule>: <message>
        <source snippet>
        (annotate with '// mgc-lint: <tag> -- <why>' if intentional)

Allowlist grammar: a finding is suppressed when the flagged line — or the
line directly above it — carries a comment of the form::

    // mgc-lint: <tag> -- <why>

where <tag> is the rule's allow tag from ALLOW_TAGS below. The `-- <why>`
justification is conventionally required in review, but the linters match
on the tag alone so the justification stays free-form.

Rule registry (rule id -> allow tag):

    racy-write          racy-ok       plain write to an array that is
                                      atomically accessed in the same
                                      parallel lambda        (v1 + v2)
    region-in-parallel  region-ok     prof::Region inside a parallel
                                      lambda                 (v1 + v2)
    bare-ofstream       ofstream-ok   std::ofstream instead of
                                      guard::atomic_write_file (v1 + v2)
    raw-stderr-in-serve stderr-ok     fprintf(stderr)/std::cerr in serving
                                      code instead of obs::log       (v1)
    discarded-status    status-ok     guard::Status / Result<T> return
                                      value dropped on the floor  (v2)
    unguarded-mutex     guard-ok      mutex member whose class has no
                                      MGC_GUARDED_BY data         (v2)
    blocking-in-parallel blocking-ok  blocking call (lock / sleep /
                                      file I/O) inside a parallel
                                      lambda                      (v2)
    missing-ctx-poll    poll-ok       loop in a guard::Ctx-taking
                                      function that neither dispatches
                                      nor polls the Ctx            (v2)
    unbudgeted-alloc    budget-ok     data-sized allocation in
                                      budget-scoped code with no
                                      MemoryBudget activity in the
                                      enclosing function           (v2)

See docs/static-analysis.md for the full catalogue with examples.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

#: rule id -> allow tag (the `<tag>` in `// mgc-lint: <tag> -- <why>`).
ALLOW_TAGS: dict[str, str] = {
    "racy-write": "racy-ok",
    "region-in-parallel": "region-ok",
    "bare-ofstream": "ofstream-ok",
    "raw-stderr-in-serve": "stderr-ok",
    "discarded-status": "status-ok",
    "unguarded-mutex": "guard-ok",
    "blocking-in-parallel": "blocking-ok",
    "missing-ctx-poll": "poll-ok",
    "unbudgeted-alloc": "budget-ok",
}

ALLOW_PREFIX = "mgc-lint: "

#: C/C++ source extensions both linters consider.
SOURCE_EXTS = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh", ".inl")


@dataclass
class Finding:
    """One lint finding, in the shared v1/v2 format."""

    path: str
    line: int  # 1-based
    rule: str  # key of ALLOW_TAGS
    message: str  # one-line description (no trailing newline)
    snippet: str = ""  # stripped source line, for context


def allow_tag(rule: str) -> str:
    """Full allow-comment text for a rule ('mgc-lint: racy-ok')."""
    return ALLOW_PREFIX + ALLOW_TAGS[rule]


def allowlisted(raw_lines: list[str], line_idx: int, rule: str) -> bool:
    """True if the 0-based line or the line above carries the rule's tag."""
    tag = allow_tag(rule)
    if line_idx < len(raw_lines) and tag in raw_lines[line_idx]:
        return True
    if 0 < line_idx <= len(raw_lines) and tag in raw_lines[line_idx - 1]:
        return True
    return False


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment/string contents with spaces, preserving offsets and
    newlines so findings keep accurate line numbers. Allowlist comments are
    read from the raw lines before stripping (see allowlisted)."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif ch == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def match_forward(text: str, i: int, open_ch: str, close_ch: str) -> int:
    """Offset of the bracket matching text[i] (which must be open_ch), or -1."""
    depth = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def collect_files(roots: list[str]) -> list[str]:
    """Source files under the given roots (files pass through unchanged)."""
    files: list[str] = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, name))
    return files


def read_source(path: str) -> str | None:
    """File contents, or None (with a note on stderr) when unreadable."""
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            return f.read()
    except OSError as e:
        print(f"mgc_lint: cannot read {path}: {e}", file=sys.stderr)
        return None


def print_findings(findings: list[Finding], scanned: int,
                   tool: str = "mgc_lint") -> int:
    """Prints findings in the shared format; returns the process exit code
    (0 = clean, 1 = findings)."""
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(f"{f.path}:{f.line}: {f.rule}: {f.message}")
        if f.snippet:
            print(f"    {f.snippet}")
        print(f"    (annotate with '// {allow_tag(f.rule)} -- <why>' "
              f"if intentional)")
    n = len(findings)
    if n:
        print(f"{tool}: {n} finding{'s' if n != 1 else ''} "
              f"in {scanned} files")
        return 1
    print(f"{tool}: clean ({scanned} files)")
    return 0
