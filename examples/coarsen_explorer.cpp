// Figure 1 explorer: coarsen a small graph one level with every mapping
// method and emit Graphviz DOT files showing the fine graph with vertices
// colored by aggregate — the same visualization the paper uses to contrast
// coarsening behaviour.
//
//   ./coarsen_explorer [out_dir]   (default: current directory)
//
// Render with: dot -Tpng -O out_dir/coarse_*.dot

#include <cstdio>
#include <sstream>
#include <string>

#include "mgc.hpp"

namespace {

mgc::guard::Status write_dot(const std::string& path, const mgc::Csr& g,
                             const mgc::CoarseMap& cm,
                             const std::string& title) {
  static const char* kPalette[] = {
      "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
      "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#86bcb6", "#d37295"};
  std::ostringstream out;
  out << "graph \"" << title << "\" {\n"
      << "  layout=neato;\n  node [style=filled, shape=circle];\n";
  for (mgc::vid_t u = 0; u < g.num_vertices(); ++u) {
    const int color = cm.map[static_cast<std::size_t>(u)] % 12;
    out << "  " << u << " [fillcolor=\"" << kPalette[color]
        << "\", label=\"" << u << "\"];\n";
  }
  for (mgc::vid_t u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.neighbors(u);
    auto ws = g.edge_weights(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (nbrs[k] > u) {
        const bool internal = cm.map[static_cast<std::size_t>(u)] ==
                              cm.map[static_cast<std::size_t>(nbrs[k])];
        out << "  " << u << " -- " << nbrs[k] << " [penwidth=" << ws[k]
            << (internal ? ", style=bold" : ", style=dashed, color=gray")
            << "];\n";
      }
    }
  }
  out << "}\n";
  // Durable write: a crash mid-emit must not leave a truncated .dot file.
  return mgc::guard::atomic_write_file(path, out.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgc;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const Exec exec = Exec::threads();

  // The same style of small irregular mesh as the paper's Fig. 1.
  const Csr g = make_triangulated_grid(5, 4, 7);

  const Mapping methods[] = {Mapping::kHec,     Mapping::kHem,
                             Mapping::kMtMetis, Mapping::kGosh,
                             Mapping::kGoshHec, Mapping::kMis2,
                             Mapping::kHec3,    Mapping::kSuitor};
  std::printf("one level of coarsening on a %d-vertex mesh:\n\n",
              g.num_vertices());
  for (const Mapping m : methods) {
    const CoarseMap cm = compute_mapping(m, exec, g, 1234);
    const Csr coarse = construct_coarse_graph(exec, g, cm);
    const std::string name = mapping_name(m);
    const std::string path = out_dir + "/coarse_" + name + ".dot";
    const guard::Status st = write_dot(path, g, cm, name);
    if (!st.ok()) {
      std::fprintf(stderr, "coarsen_explorer: %s\n", st.to_string().c_str());
      return guard::exit_code(st.code);
    }
    std::printf("  %-9s nc=%3d ratio=%5.2f coarse_m=%4lld  -> %s\n",
                name.c_str(), cm.nc,
                coarsening_ratio(cm, g.num_vertices()),
                static_cast<long long>(coarse.num_edges()), path.c_str());
  }
  std::printf("\nrender with: dot -Tpng -O %s/coarse_*.dot\n",
              out_dir.c_str());
  return 0;
}
