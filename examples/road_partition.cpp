// Road-network partitioning: the europeOsm-style workload where two-hop
// matching earns its keep. Compares HEC against HEM and mt-Metis two-hop
// coarsening on a sparse road-like graph, reporting hierarchy depth and
// final cut — the practical takeaway of paper Tables IV-VI for sparse,
// high-diameter graphs.
//
//   ./road_partition [grid_side] [drop_fraction]

#include <cstdio>
#include <cstdlib>

#include "mgc.hpp"

int main(int argc, char** argv) {
  using namespace mgc;
  const vid_t side = argc > 1 ? std::atoi(argv[1]) : 120;
  const double drop = argc > 2 ? std::atof(argv[2]) : 0.42;

  const Csr g = make_road_like(side, side, drop, 2024);
  std::printf("road network: n=%d m=%lld avg_deg=%.2f\n\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              2.0 * g.num_edges() / g.num_vertices());

  const Exec exec = Exec::threads();
  std::printf("%-10s %8s %8s %8s %10s %9s\n", "mapping", "levels",
              "avg cr", "coarse n", "cut (FM)", "time(s)");
  for (const Mapping m :
       {Mapping::kHec, Mapping::kHem, Mapping::kMtMetis, Mapping::kGoshHec}) {
    CoarsenOptions copts;
    copts.mapping = m;
    const Hierarchy h = coarsen_multilevel(exec, g, copts);
    const PartitionResult r = multilevel_fm_bisect(exec, g, copts);
    std::printf("%-10s %8d %8.2f %8d %10lld %9.3f\n",
                mapping_name(m).c_str(), h.num_levels(),
                h.avg_coarsening_ratio(), h.coarsest().num_vertices(),
                static_cast<long long>(r.cut), r.total_seconds());
  }
  return 0;
}
