// Quickstart: generate a mesh, coarsen it with HEC, inspect the hierarchy,
// and bisect it two ways.
//
//   ./quickstart            — default 64x64 grid
//   ./quickstart <path.mtx> — load a Matrix Market graph instead

#include <cstdio>

#include "mgc.hpp"

int main(int argc, char** argv) {
  using namespace mgc;

  Csr g;
  if (argc > 1) {
    g = largest_connected_component(read_matrix_market_file(argv[1]));
  } else {
    g = make_grid2d(64, 64);
  }
  std::printf("graph: n=%d m=%lld skew=%.2f\n", g.num_vertices(),
              static_cast<long long>(g.num_edges()), g.degree_skew());

  const Exec exec = Exec::threads();

  // Multilevel coarsening with HEC mapping + sort-based construction.
  CoarsenOptions copts;
  copts.mapping = Mapping::kHec;
  copts.construct.method = Construction::kSort;
  const Hierarchy h = coarsen_multilevel(exec, g, copts);

  std::printf("\nhierarchy (%d levels):\n", h.num_levels());
  for (int i = 0; i < h.num_levels(); ++i) {
    const LevelInfo& l = h.levels[static_cast<std::size_t>(i)];
    std::printf("  level %2d: n=%8d m=%10lld\n", i, l.n,
                static_cast<long long>(l.m));
  }
  std::printf("avg coarsening ratio: %.2f\n", h.avg_coarsening_ratio());

  // Bisect with both refinement strategies.
  const PartitionResult spec = multilevel_spectral_bisect(exec, g);
  std::printf("\nspectral bisection: cut=%lld imbalance=%.4f (%.3fs)\n",
              static_cast<long long>(spec.cut), imbalance(g, spec.part),
              spec.total_seconds());

  const PartitionResult fm = multilevel_fm_bisect(exec, g);
  std::printf("FM bisection:       cut=%lld imbalance=%.4f (%.3fs)\n",
              static_cast<long long>(fm.cut), imbalance(g, fm.part),
              fm.total_seconds());
  return 0;
}
