// Spectral graph drawing (paper §III-C: "spectral partitioning is closely
// related to spectral drawing, where two eigenvectors are used as
// coordinates"). Uses the multilevel machinery to draw a mesh: coordinates
// come from the 2nd and 3rd Laplacian eigenvectors, and the bisection is
// overlaid by color. Emits an SVG.
//
//   ./spectral_drawing [out.svg]

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include "mgc.hpp"

int main(int argc, char** argv) {
  using namespace mgc;
  const std::string out_path = argc > 1 ? argv[1] : "drawing.svg";
  const Exec exec = Exec::threads();

  const Csr g = make_triangulated_grid(24, 24, 9);
  std::printf("drawing graph: n=%d m=%lld\n", g.num_vertices(),
              static_cast<long long>(g.num_edges()));

  SpectralOptions opts;
  opts.max_iterations = 20000;
  const auto basis = spectral_embedding(exec, g, 2, 42, opts);
  if (basis.size() < 2) {
    std::fprintf(stderr, "embedding failed\n");
    return 1;
  }
  const std::vector<double>& xs = basis[0];
  const std::vector<double>& ys = basis[1];

  // Overlay the spectral bisection.
  const std::vector<int> part = bisect_by_vector(g, xs);
  std::printf("spectral bisection cut: %lld\n",
              static_cast<long long>(edge_cut(g, part)));

  const auto [xmin_it, xmax_it] = std::minmax_element(xs.begin(), xs.end());
  const auto [ymin_it, ymax_it] = std::minmax_element(ys.begin(), ys.end());
  const double W = 800, H = 800, pad = 20;
  auto sx = [&](double x) {
    return pad + (x - *xmin_it) / (*xmax_it - *xmin_it) * (W - 2 * pad);
  };
  auto sy = [&](double y) {
    return pad + (y - *ymin_it) / (*ymax_it - *ymin_it) * (H - 2 * pad);
  };

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << W
      << "' height='" << H << "'>\n<rect width='100%' height='100%' "
      << "fill='white'/>\n";
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const vid_t v : g.neighbors(u)) {
      if (v > u) {
        const bool cut_edge = part[static_cast<std::size_t>(u)] !=
                              part[static_cast<std::size_t>(v)];
        svg << "<line x1='" << sx(xs[static_cast<std::size_t>(u)])
            << "' y1='" << sy(ys[static_cast<std::size_t>(u)]) << "' x2='"
            << sx(xs[static_cast<std::size_t>(v)]) << "' y2='"
            << sy(ys[static_cast<std::size_t>(v)]) << "' stroke='"
            << (cut_edge ? "#e15759" : "#c0c0c0") << "' stroke-width='"
            << (cut_edge ? 2 : 1) << "'/>\n";
      }
    }
  }
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    svg << "<circle cx='" << sx(xs[static_cast<std::size_t>(u)]) << "' cy='"
        << sy(ys[static_cast<std::size_t>(u)]) << "' r='3' fill='"
        << (part[static_cast<std::size_t>(u)] == 0 ? "#4e79a7" : "#f28e2b")
        << "'/>\n";
  }
  svg << "</svg>\n";
  // Durable write: a crash mid-emit must not leave a truncated SVG.
  const guard::Status st = guard::atomic_write_file(out_path, svg.str());
  if (!st.ok()) {
    std::fprintf(stderr, "spectral_drawing: %s\n", st.to_string().c_str());
    return guard::exit_code(st.code);
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
