// Community detection with the multilevel clustering pipeline — the
// clustering application called out in the paper's introduction and
// future-work list. Builds a planted-partition graph, recovers the
// communities, and reports modularity against the ground truth.
//
//   ./community_detection [groups] [group_size] [bridge_edges]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "mgc.hpp"

int main(int argc, char** argv) {
  using namespace mgc;
  const int groups = argc > 1 ? std::atoi(argv[1]) : 12;
  const int size = argc > 2 ? std::atoi(argv[2]) : 30;
  const int bridges = argc > 3 ? std::atoi(argv[3]) : 3;

  // Planted partition: dense groups (ER p=0.5 inside) with a few random
  // bridges between consecutive groups.
  Xoshiro256 rng(7);
  std::vector<Edge> edges;
  for (int c = 0; c < groups; ++c) {
    const vid_t base = c * size;
    for (vid_t i = 0; i < size; ++i) {
      for (vid_t j = i + 1; j < size; ++j) {
        if (rng.uniform() < 0.5) edges.push_back({base + i, base + j, 1});
      }
    }
    const vid_t next_base = ((c + 1) % groups) * size;
    for (int b = 0; b < bridges; ++b) {
      edges.push_back(
          {base + static_cast<vid_t>(rng.bounded(size)),
           next_base + static_cast<vid_t>(rng.bounded(size)), 1});
    }
  }
  const Csr g = largest_connected_component(
      build_csr_from_edges(groups * size, std::move(edges)));
  std::printf("planted graph: %d groups of %d, n=%d m=%lld\n", groups, size,
              g.num_vertices(), static_cast<long long>(g.num_edges()));

  const Exec exec = Exec::threads();
  ClusterOptions opts;
  // Coarsening must stop ABOVE the expected community count: local-move
  // refinement can merge clusters but never split an over-coarsened one.
  opts.coarsen.cutoff = 4 * groups;
  const ClusterResult r = multilevel_cluster(exec, g, opts);

  // Ground-truth modularity for comparison (vertex u belongs to u / size).
  std::vector<int> truth(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    truth[static_cast<std::size_t>(u)] = u / size;
  }
  std::printf("\nrecovered clusters: %d (truth %d)\n", r.num_clusters,
              groups);
  std::printf("modularity: recovered %.4f vs ground truth %.4f\n",
              r.modularity, modularity(g, truth));

  // Cluster size histogram.
  std::map<int, int> sizes;
  for (const int c : r.cluster) ++sizes[c];
  std::map<int, int> histogram;  // size -> how many clusters
  for (const auto& [c, s] : sizes) ++histogram[s];
  std::printf("\ncluster sizes:\n");
  for (const auto& [s, count] : histogram) {
    std::printf("  size %4d x %d\n", s, count);
  }
  return 0;
}
