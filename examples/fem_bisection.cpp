// FEM-workload bisection: partition a 3D mesh for a two-node simulation,
// the motivating use case of multilevel partitioners. Compares all three
// partitioner flavours and reports cut, balance, and per-phase time.
//
//   ./fem_bisection [nx ny nz]   (default 20 20 20)

#include <cstdio>
#include <cstdlib>

#include "mgc.hpp"

int main(int argc, char** argv) {
  using namespace mgc;
  const vid_t nx = argc > 1 ? std::atoi(argv[1]) : 20;
  const vid_t ny = argc > 2 ? std::atoi(argv[2]) : 20;
  const vid_t nz = argc > 3 ? std::atoi(argv[3]) : 20;

  const Csr g = make_grid3d(nx, ny, nz);
  std::printf("FEM mesh %dx%dx%d: n=%d m=%lld\n", nx, ny, nz,
              g.num_vertices(), static_cast<long long>(g.num_edges()));
  // The ideal bisection of a cube mesh cuts one mid-plane.
  std::printf("reference mid-plane cut: %d\n\n",
              std::min(nx * ny, std::min(ny * nz, nx * nz)));

  const Exec exec = Exec::threads();
  struct Row {
    const char* name;
    PartitionResult r;
  };
  CoarsenOptions copts;
  copts.mapping = Mapping::kHec;
  const Row rows[] = {
      {"multilevel FM (HEC device)", multilevel_fm_bisect(exec, g, copts)},
      {"multilevel spectral (HEC)",
       multilevel_spectral_bisect(exec, g, copts)},
      {"Metis-like serial baseline",
       metis_like_bisect(g, MetisMode::kMtMetis)},
  };
  std::printf("%-28s %10s %10s %8s %9s\n", "partitioner", "edge cut",
              "imbalance", "levels", "time(s)");
  for (const Row& row : rows) {
    std::printf("%-28s %10lld %10.4f %8d %9.3f\n", row.name,
                static_cast<long long>(row.r.cut), imbalance(g, row.r.part),
                row.r.levels, row.r.total_seconds());
  }
  return 0;
}
